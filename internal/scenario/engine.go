package scenario

import (
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"avmem/internal/exp"
	"avmem/internal/obs"
	"avmem/internal/ops"
	"avmem/internal/stats"
	"avmem/internal/trace"
)

// Backends name the execution engines a scenario can run on.
const (
	// BackendSim is the virtual-time simulator (exp.World): protocol
	// logic driven by the deployment engine's cohort ticks.
	BackendSim = exp.BackendSim
	// BackendMemnet is the live runtime (exp.Cluster): real node.Node
	// agents on a deterministic, seedable in-process memnet, executing
	// on the same virtual clock.
	BackendMemnet = exp.BackendMemnet
)

// Options tunes a scenario run.
type Options struct {
	// Log receives progress lines as events fire (nil discards).
	Log io.Writer
	// Backend selects the execution engine: BackendSim (default) or
	// BackendMemnet. The same spec, events, and assertions run on both.
	Backend string
	// Shards partitions the sim backend's event queue across this many
	// per-shard heaps (0 or 1 = single heap). Results are bit-identical
	// for every value — sharding is a queue-shape choice, not a
	// semantic one (DESIGN.md §14). Rejected on the memnet backend.
	Shards int
	// ShardThreads > 1 drains the shard heaps on that many worker
	// threads inside conservative lookahead windows (DESIGN.md §14).
	// Output is reproducible for a fixed (spec, Shards) — identical
	// across runs, GOMAXPROCS, and any thread count ≥ 2 — but follows a
	// different canonical order than ShardThreads ≤ 1. Worlds whose
	// configuration rules out lane-safe execution (adversaries, audit,
	// monitor noise, distributed monitor, unbounded latency) silently
	// run serial. Rejected on the memnet backend.
	ShardThreads int
	// Metrics, when non-nil, instruments the deployment into this
	// registry (internal/obs). Determinism-neutral: the report and
	// event log are byte-identical with or without it; scenario-level
	// verdict gauges are published here at the end of the run.
	Metrics *obs.Registry
	// OpTrace, when non-nil, collects causal op spans fleet-wide.
	// Determinism-neutral like Metrics.
	OpTrace *obs.Tracer
}

// Result is the outcome of one scenario run.
type Result struct {
	Name string
	// Metrics holds every metric the run produced (see Metrics for the
	// full name space; workload metrics exist only if the corresponding
	// event kind ran).
	Metrics map[string]float64
	// EventLog records one line per fired event.
	EventLog []string
	// Failures lists violated assertions; empty means the run passed.
	Failures []string
}

// Passed reports whether every assertion held.
func (r *Result) Passed() bool { return len(r.Failures) == 0 }

// WriteReport renders the metrics and assertion verdicts to w.
func (r *Result) WriteReport(w io.Writer) {
	fmt.Fprintf(w, "== scenario %q ==\n", r.Name)
	names := make([]string, 0, len(r.Metrics))
	for name := range r.Metrics {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "%-24s %.4f\n", name, r.Metrics[name])
	}
	if r.Passed() {
		fmt.Fprintf(w, "PASS: all assertions held\n")
		return
	}
	for _, f := range r.Failures {
		fmt.Fprintf(w, "FAIL: %s\n", f)
	}
}

// Run builds the fleet, warms it up, fires the event sequence in order
// on the virtual clock, computes the final metrics, and evaluates the
// assertions. A violated assertion is reported in Result.Failures, not
// as an error; err is reserved for a scenario that cannot execute.
func Run(spec *Spec, opts Options) (*Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	logw := opts.Log
	if logw == nil {
		logw = io.Discard
	}

	w, err := buildDeployment(spec, opts)
	if err != nil {
		return nil, err
	}
	// Backends that own resources (the memnet cluster's nodes and
	// fabric) expose Stop; tear them down when the run ends.
	if c, ok := w.(interface{ Stop() }); ok {
		defer c.Stop()
	}
	fmt.Fprintf(logw, "fleet ready (%s backend): %d hosts, N*=%.0f; warming up %v\n",
		backendName(opts.Backend), len(w.Hosts()), w.StableSize(), spec.Warmup.D())
	w.Warmup(spec.Warmup.D())

	run := &runState{w: w, spec: spec, log: logw, base: w.Now()}
	for i := range spec.Events {
		if err := run.fire(i, &spec.Events[i]); err != nil {
			return nil, err
		}
	}

	res := &Result{Name: spec.Name, Metrics: run.metrics(), EventLog: run.events}
	res.Failures = evaluate(spec.Assertions, res.Metrics)
	publishMetrics(opts.Metrics, res)
	return res, nil
}

// publishMetrics mirrors the final scenario metrics — including the
// audit false-positive tripwire — into the obs registry as gauges, so
// a live /metrics scrape and the end-of-run dump carry the scenario
// verdict next to the engine counters. Names are prefixed with
// scenario_ to keep them clear of the layer instruments; the registry
// dump sorts, so the map order here is irrelevant to output stability.
func publishMetrics(reg *obs.Registry, res *Result) {
	if reg == nil {
		return
	}
	for name, v := range res.Metrics {
		reg.Gauge("scenario_" + name).Set(v)
	}
	reg.Gauge("scenario_failed_assertions").Set(float64(len(res.Failures)))
}

// backendName resolves the default backend label.
func backendName(backend string) string {
	if backend == "" {
		return BackendSim
	}
	return backend
}

// buildDeployment assembles the fleet on the requested backend.
func buildDeployment(spec *Spec, opts Options) (exp.Deployment, error) {
	backend := opts.Backend
	if opts.Shards > 1 && backend == BackendMemnet {
		return nil, fmt.Errorf("scenario: -shards applies to the sim backend only (memnet runs real goroutine-per-node agents)")
	}
	if opts.ShardThreads > 1 && backend == BackendMemnet {
		return nil, fmt.Errorf("scenario: -shard-threads applies to the sim backend only (memnet runs real goroutine-per-node agents)")
	}
	var tr *trace.Trace
	if spec.Fleet.Trace != "" {
		f, err := os.Open(spec.Fleet.Trace)
		if err != nil {
			return nil, fmt.Errorf("scenario: fleet trace: %w", err)
		}
		defer f.Close()
		tr, err = trace.Read(f)
		if err != nil {
			return nil, fmt.Errorf("scenario: fleet trace: %w", err)
		}
	} else {
		gen := trace.DefaultGenConfig(spec.Seed)
		if spec.Fleet.Hosts > 0 {
			gen.Hosts = spec.Fleet.Hosts
		}
		if spec.Fleet.Days > 0 {
			gen.Epochs = int(spec.Fleet.Days * 24 * 3)
		}
		pdf, err := availabilityPDF(spec.Fleet.Availability)
		if err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
		gen.PDF = pdf
		tr, err = trace.Generate(gen)
		if err != nil {
			return nil, fmt.Errorf("scenario: generating churn trace: %w", err)
		}
	}
	cfg := exp.WorldConfig{
		Seed:               spec.Seed,
		Trace:              tr,
		Epsilon:            spec.Fleet.Epsilon,
		C1:                 spec.Fleet.C1,
		C2:                 spec.Fleet.C2,
		ViewSize:           spec.Fleet.ViewSize,
		ProtocolPeriod:     spec.Fleet.ProtocolPeriod.D(),
		RefreshPeriod:      spec.Fleet.RefreshPeriod.D(),
		VerifyInbound:      spec.Fleet.VerifyInbound,
		Cushion:            spec.Fleet.Cushion,
		MonitorErr:         spec.Fleet.MonitorError,
		MonitorStaleness:   spec.Fleet.MonitorStaleness.D(),
		DistributedMonitor: spec.Fleet.DistributedMonitor,
		Audit:              spec.Fleet.Audit.params(),
		Adversary:          spec.Adversaries.config(),
		Shards:             opts.Shards,
		ShardThreads:       opts.ShardThreads,
		Metrics:            opts.Metrics,
		OpTrace:            opts.OpTrace,
	}
	if cfg.Adversary != nil {
		// Select the cohort by what the monitor reports when the attack
		// runs (post-warmup), not by end-of-trace availability.
		cfg.Adversary.SelectAt = spec.Warmup.D()
	}
	d, err := exp.NewDeployment(backend, cfg)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	return d, nil
}

// runState accumulates workload outcomes across the event sequence.
type runState struct {
	w    exp.Deployment
	spec *Spec
	log  io.Writer
	// base is the virtual time at warmup end; event At times are
	// relative to it.
	base   time.Duration
	events []string

	anySent, anyDelivered, anyDropped int
	anyHops                           int
	anyBatches                        int
	// anyLatency and anyLatQ summarize delivery latencies incrementally
	// (running moments + a bounded reservoir for quantiles) instead of
	// holding every sample for the whole run.
	anyLatency stats.Accumulator
	anyLatQ    *stats.Reservoir

	mcCount       int
	mcReliability float64
	mcSpam        float64

	rcCount    int
	rcCoverage float64
	rcSpam     float64

	agSent     int
	agDone     int
	agAccuracy float64
	agCoverage float64
	agHops     float64
	agDiverge  float64
	agRejected int
	agForgRej  int
	agForgAcc  int

	attackProbes int
	attackAccept float64
	legitReject  float64

	// onset is the virtual time the adversaries were first armed
	// (detection latency baseline); bias holds the last bias probe.
	onsetSet   bool
	onset      time.Duration
	biasProbed bool
	bias       exp.BiasResult
}

func (r *runState) logf(format string, args ...any) {
	line := fmt.Sprintf(format, args...)
	r.events = append(r.events, line)
	fmt.Fprintf(r.log, "[%8v] %s\n", r.w.Now()-r.base, line)
}

// fire advances virtual time to the event's At (when it is still in the
// future) and applies the action.
func (r *runState) fire(i int, e *Event) error {
	due := r.base + e.At.D()
	if now := r.w.Now(); due > now {
		r.w.RunFor(due - now)
	}
	switch {
	case e.ChurnBurst != nil:
		return r.churnBurst(e.ChurnBurst)
	case e.Attack != nil:
		return r.attack(e.Attack)
	case e.MonitorNoise != nil:
		return r.monitorNoise(e.MonitorNoise)
	case e.AnycastBatch != nil:
		return r.anycastBatch(e.AnycastBatch)
	case e.MulticastBatch != nil:
		return r.multicastBatch(e.MulticastBatch)
	case e.Rangecast != nil:
		return r.rangecastBatch(e.Rangecast)
	case e.Aggregate != nil:
		return r.aggregateBatch(e.Aggregate)
	case e.Adversary != nil:
		return r.adversaryEvent(e.Adversary)
	case e.BiasProbe != nil:
		return r.biasProbe()
	}
	return fmt.Errorf("scenario: event %d has no action", i)
}

// adversaryEvent arms (onset) or disarms (offset) the Byzantine cohort.
func (r *runState) adversaryEvent(a *AdversaryEvent) error {
	cohort := r.w.Adversaries()
	if len(cohort) == 0 {
		return fmt.Errorf("scenario: adversary event without an adversary cohort")
	}
	r.w.SetAdversariesActive(a.Active)
	if a.Active && !r.onsetSet {
		r.onsetSet = true
		r.onset = r.w.Now()
	}
	verb := "offset (behaviors disarmed)"
	if a.Active {
		verb = "onset (behaviors armed)"
	}
	r.logf("adversary %s: %d misbehaving nodes", verb, len(cohort))
	return nil
}

// biasProbe snapshots adversary over-representation in honest state.
func (r *runState) biasProbe() error {
	r.bias = exp.OverlayBias(r.w)
	r.biasProbed = true
	r.logf("bias probe: coarse-view share %.3f (population %.3f, bias %.2f), membership share %.3f",
		r.bias.CoarseShare, r.bias.PopulationShare, r.bias.Bias, r.bias.MembershipShare)
	return nil
}

func (r *runState) churnBurst(b *ChurnBurst) error {
	online := r.w.OnlineInBand(b.BandLo, bandHi(b.BandHi))
	k := int(float64(len(online))*b.Fraction + 0.5)
	if k > len(online) {
		k = len(online)
	}
	until := r.w.Now() + b.Duration.D()
	perm := r.w.Rand().Perm(len(online))
	for _, idx := range perm[:k] {
		r.w.ForceOffline(online[idx], until)
	}
	r.logf("churn burst: forced %d/%d online nodes offline for %v", k, len(online), b.Duration.D())
	return nil
}

func (r *runState) attack(a *Attack) error {
	flood := exp.FloodingAttack(r.w, a.Cushion)
	reject := exp.LegitimateRejection(r.w, a.Cushion)
	r.attackProbes++
	if flood.Overall > r.attackAccept {
		r.attackAccept = flood.Overall
	}
	if reject.Overall > r.legitReject {
		r.legitReject = reject.Overall
	}
	r.logf("attack probe (cushion %.2f): accept %.3f, legit-reject %.3f",
		a.Cushion, flood.Overall, reject.Overall)
	return nil
}

func (r *runState) monitorNoise(n *MonitorNoise) error {
	if err := r.w.SetMonitorNoise(n.Error, n.Staleness.D()); err != nil {
		return fmt.Errorf("scenario: monitor_noise: %w", err)
	}
	r.logf("monitor noise set: error ±%.2f, staleness %v", n.Error, n.Staleness.D())
	return nil
}

func (r *runState) anycastBatch(b *AnycastBatch) error {
	policy, _ := parsePolicy(b.Policy)
	flavor, _ := parseFlavor(b.Flavor)
	ttl := b.TTL
	if ttl == 0 {
		ttl = 6
	}
	spec := exp.AnycastSpec{
		Name:   "scenario",
		BandLo: b.BandLo, BandHi: bandHi(b.BandHi),
		Target: b.target(),
		Opts:   ops.AnycastOptions{Policy: policy, Flavor: flavor, TTL: ttl, Retry: b.Retry},
		Runs:   1, PerRun: b.Count,
		Gap: b.Gap.D(), Settle: b.Settle.D(),
	}
	res, err := exp.RunAnycasts(r.w, spec)
	if err != nil {
		return fmt.Errorf("scenario: anycast_batch: %w", err)
	}
	r.anyBatches++
	r.anySent += res.Sent
	r.anyDelivered += res.Delivered
	r.anyDropped += res.RetryExpired + res.Pending
	for h, n := range res.HopsHist {
		r.anyHops += h * n
	}
	if r.anyLatQ == nil {
		r.anyLatQ = stats.NewReservoir(1024, r.spec.Seed)
	}
	for _, l := range res.Latencies {
		ms := float64(l.Milliseconds())
		r.anyLatency.Add(ms)
		r.anyLatQ.Add(ms)
	}
	r.logf("anycast batch: %d sent to %v, %.2f delivered (%d ttl-expired, %d dropped)",
		res.Sent, spec.Target, res.FractionDelivered(), res.TTLExpired, res.RetryExpired+res.Pending)
	return nil
}

func (r *runState) multicastBatch(b *MulticastBatch) error {
	mode, _ := parseMode(b.Mode)
	flavor, _ := parseFlavor(b.Flavor)
	spec := exp.MulticastSpec{
		Name:   "scenario",
		BandLo: b.BandLo, BandHi: bandHi(b.BandHi),
		Target: b.target(),
		Mode:   mode, Flavor: flavor,
		Fanout: b.Fanout, Rounds: b.Rounds, Period: b.Period.D(),
		Runs: 1, PerRun: b.Count,
		Gap: b.Gap.D(), Settle: b.Settle.D(),
	}
	res, err := exp.RunMulticasts(r.w, spec)
	if err != nil {
		return fmt.Errorf("scenario: multicast_batch: %w", err)
	}
	r.mcCount += res.Sent
	r.mcReliability += res.MeanReliability() * float64(res.Sent)
	r.mcSpam += res.MeanSpamRatio() * float64(res.Sent)
	r.logf("multicast batch: %d sent to %v (%s), reliability %.2f, spam %.2f",
		res.Sent, spec.Target, mode, res.MeanReliability(), res.MeanSpamRatio())
	return nil
}

func (r *runState) rangecastBatch(b *RangecastBatch) error {
	flavor, _ := parseFlavor(b.Flavor)
	spec := exp.RangecastSpec{
		Name:   "scenario",
		BandLo: b.BandLo, BandHi: bandHi(b.BandHi),
		Band:    b.band(),
		Payload: b.Payload,
		Flavor:  flavor,
		Runs:    1, PerRun: b.Count,
		Gap: b.Gap.D(), Settle: b.Settle.D(),
	}
	res, err := exp.RunRangecasts(r.w, spec)
	if err != nil {
		return fmt.Errorf("scenario: rangecast: %w", err)
	}
	r.rcCount += res.Sent
	r.rcCoverage += res.MeanCoverage() * float64(res.Sent)
	r.rcSpam += res.MeanSpamRatio() * float64(res.Sent)
	r.logf("rangecast batch: %d sent to %v, coverage %.2f, spam %.2f",
		res.Sent, spec.Band, res.MeanCoverage(), res.MeanSpamRatio())
	return nil
}

func (r *runState) aggregateBatch(b *AggregateBatch) error {
	op, _ := parseOp(b.Op)
	flavor, _ := parseFlavor(b.Flavor)
	spec := exp.AggregateSpec{
		Name:   "scenario",
		BandLo: b.BandLo, BandHi: bandHi(b.BandHi),
		Band:       b.band(),
		Op:         op,
		Flavor:     flavor,
		Redundancy: b.Redundancy,
		Runs:       1, PerRun: b.Count,
		Gap: b.Gap.D(), Settle: b.Settle.D(),
	}
	res, err := exp.RunAggregates(r.w, spec)
	if err != nil {
		return fmt.Errorf("scenario: aggregate: %w", err)
	}
	r.agSent += res.Sent
	r.agDone += res.Done
	r.agAccuracy += res.MeanAccuracy() * float64(res.Sent)
	r.agCoverage += res.MeanCoverage() * float64(res.Sent)
	r.agHops += res.MeanDepth() * float64(res.Done)
	r.agDiverge += res.MeanDivergence() * float64(res.Done)
	r.agRejected += res.RejectedPartials
	r.agForgRej += res.ForgeryRejected
	r.agForgAcc += res.ForgeryAccepted
	r.logf("aggregate batch: %d %v over %v, accuracy %.3f, coverage %.2f, done %d, divergence %.3f, rejected %d, forged %d/%d",
		res.Sent, op, spec.Band, res.MeanAccuracy(), res.MeanCoverage(), res.Done,
		res.MeanDivergence(), res.RejectedPartials, res.ForgeryAccepted, res.ForgeryAccepted+res.ForgeryRejected)
	return nil
}

// metrics computes the final metric map: workload aggregates plus an
// end-of-run overlay snapshot.
func (r *runState) metrics() map[string]float64 {
	m := make(map[string]float64, len(Metrics))
	if r.anySent > 0 {
		m["anycast_delivery_rate"] = float64(r.anyDelivered) / float64(r.anySent)
		m["anycast_drop_rate"] = float64(r.anyDropped) / float64(r.anySent)
	}
	if r.anyDelivered > 0 {
		m["anycast_mean_hops"] = float64(r.anyHops) / float64(r.anyDelivered)
	}
	if r.anyLatency.Count() > 0 {
		m["anycast_mean_latency_ms"] = r.anyLatency.Mean()
		m["anycast_p90_latency_ms"] = r.anyLatQ.Percentile(90)
	}
	if r.mcCount > 0 {
		m["multicast_reliability"] = r.mcReliability / float64(r.mcCount)
		m["multicast_spam_ratio"] = r.mcSpam / float64(r.mcCount)
	}
	if r.rcCount > 0 {
		m["rangecast_coverage"] = r.rcCoverage / float64(r.rcCount)
		m["rangecast_spam_ratio"] = r.rcSpam / float64(r.rcCount)
	}
	if r.agSent > 0 {
		m["agg_accuracy"] = r.agAccuracy / float64(r.agSent)
		m["agg_coverage"] = r.agCoverage / float64(r.agSent)
		m["agg_completion_rate"] = float64(r.agDone) / float64(r.agSent)
		m["agg_rejected_partials"] = float64(r.agRejected)
		m["agg_forgery_rejected"] = float64(r.agForgRej)
		m["agg_forgery_accepted"] = float64(r.agForgAcc)
	}
	if r.agDone > 0 {
		m["agg_mean_hops"] = r.agHops / float64(r.agDone)
		m["agg_divergence"] = r.agDiverge / float64(r.agDone)
	}
	if r.attackProbes > 0 {
		m["attack_accept_rate"] = r.attackAccept
		m["legit_reject_rate"] = r.legitReject
	}
	if n := len(r.w.Adversaries()); n > 0 {
		if hosts := len(r.w.Hosts()); hosts > 0 {
			m["adversary_fraction"] = float64(n) / float64(hosts)
		}
		if r.w.AuditTrail() != nil {
			stats := exp.EvictionReport(r.w, r.onset)
			m["audit_eviction_rate"] = stats.DetectionRate()
			m["audit_false_positive_rate"] = stats.FalsePositiveRate()
			if stats.Detected > 0 {
				m["audit_mean_detection_s"] = stats.MeanDetection.Seconds()
			}
		}
	}
	if r.biasProbed {
		m["overlay_bias"] = r.bias.Bias
		m["overlay_adversary_share"] = r.bias.CoarseShare
	}
	// One pass over the host universe with incremental moments — no
	// O(hosts) online-snapshot slice even at 100k hosts.
	var sliver stats.Accumulator
	for _, id := range r.w.Hosts() {
		if !r.w.Online(id) {
			continue
		}
		size := 0
		if mm := r.w.Membership(id); mm != nil {
			size = mm.Size()
		}
		sliver.Add(float64(size))
	}
	if sliver.Count() > 0 {
		m["mean_sliver_size"] = sliver.Mean()
		m["mean_degree"] = m["mean_sliver_size"]
		m["max_sliver_size"] = sliver.Max()
	} else {
		m["max_sliver_size"] = 0
	}
	if hosts := len(r.w.Hosts()); hosts > 0 {
		m["online_fraction"] = float64(sliver.Count()) / float64(hosts)
	}
	return m
}

// evaluate checks every assertion against the produced metrics.
func evaluate(assertions []Assertion, metrics map[string]float64) []string {
	var failures []string
	for _, a := range assertions {
		v, ok := metrics[a.Metric]
		if !ok {
			failures = append(failures,
				fmt.Sprintf("%s: no event produced this metric (add the matching workload/probe event)", a.Metric))
			continue
		}
		if a.Min != nil && v < *a.Min {
			failures = append(failures, fmt.Sprintf("%s = %.4f, want >= %v", a.Metric, v, *a.Min))
		}
		if a.Max != nil && v > *a.Max {
			failures = append(failures, fmt.Sprintf("%s = %.4f, want <= %v", a.Metric, v, *a.Max))
		}
	}
	return failures
}
