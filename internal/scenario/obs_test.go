package scenario

import (
	"bytes"
	"io"
	"testing"
	"time"

	"avmem/internal/obs"
)

// renderRunObs executes spec with the given options and renders the
// full report (renderRunParallel's sibling that keeps the caller in
// charge of the whole Options struct).
func renderRunObs(t *testing.T, spec *Spec, opts Options) []byte {
	t.Helper()
	res, err := Run(spec, opts)
	if err != nil {
		t.Fatalf("run %+v: %v", opts, err)
	}
	var buf bytes.Buffer
	res.WriteReport(&buf)
	for _, line := range res.EventLog {
		buf.WriteString(line)
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// obsOpts clones base and arms a fresh registry + tracer on it,
// returning all three so callers can assert the instruments actually
// saw traffic (a vacuous byte-identity test would also pass if the
// observability layer were never wired in).
func obsOpts(base Options) (Options, *obs.Registry, *obs.Tracer) {
	reg := obs.NewRegistry()
	tr := obs.NewTracer(0)
	base.Metrics = reg
	base.OpTrace = tr
	return base, reg, tr
}

// requireObserved fails unless the registry counted simulator events
// and the tracer captured op spans during the run.
func requireObserved(t *testing.T, reg *obs.Registry, tr *obs.Tracer) {
	t.Helper()
	if n := reg.Counter("sim_events_total").Value(); n == 0 {
		t.Fatal("observability was armed but sim_events_total stayed 0")
	}
	if len(tr.Snapshot()) == 0 {
		t.Fatal("observability was armed but the op tracer recorded no spans")
	}
}

// TestObsNeutralSimSerial pins the core observability contract on the
// default engine: arming a metrics registry and an op tracer must not
// change a single byte of the scenario report.
func TestObsNeutralSimSerial(t *testing.T) {
	want := renderRunObs(t, tinySpec(), Options{})
	opts, reg, tr := obsOpts(Options{})
	got := renderRunObs(t, tinySpec(), opts)
	requireObserved(t, reg, tr)
	if !bytes.Equal(got, want) {
		t.Fatal("metrics+trace instrumentation changed the serial sim report")
	}
}

// TestObsNeutralSimSharded pins the same contract on the sharded
// serial engine (Shards > 1, single thread).
func TestObsNeutralSimSharded(t *testing.T) {
	want := renderRunObs(t, tinySpec(), Options{Shards: 4})
	opts, reg, tr := obsOpts(Options{Shards: 4})
	got := renderRunObs(t, tinySpec(), opts)
	requireObserved(t, reg, tr)
	if !bytes.Equal(got, want) {
		t.Fatal("metrics+trace instrumentation changed the sharded sim report")
	}
}

// TestObsNeutralSimParallel pins the contract where it is hardest:
// worker lanes racing to bump shared counters and record spans while
// the conservative-window engine runs. The mixed workload is the same
// spec the parallel determinism suite uses, so it is known lane-safe.
func TestObsNeutralSimParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scenario sweep")
	}
	spec, err := LoadFile("../../scenarios/mixed-workload.json")
	if err != nil {
		t.Fatal(err)
	}
	want := renderRunParallel(t, spec, 8, 4)
	opts, reg, tr := obsOpts(Options{Shards: 8, ShardThreads: 4})
	got := renderRunObs(t, spec, opts)
	requireObserved(t, reg, tr)
	if !bytes.Equal(got, want) {
		t.Fatal("metrics+trace instrumentation changed the thread-parallel report")
	}
	if reg.Counter(`sim_lane_events_total{lane="0"}`).Value() == 0 {
		t.Fatal("parallel run recorded no lane-0 events; lanes were not instrumented")
	}
}

// TestObsLiveScrapeDuringParallelRun scrapes the registry continuously
// while worker lanes are bumping it (ShardThreads >= 2): the pattern of
// the /metrics goroutine reading mid-window. Under -race this pins that
// live snapshot reads are consistent with concurrent lane writes, and
// that they do not perturb the run's output.
func TestObsLiveScrapeDuringParallelRun(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scenario sweep")
	}
	spec, err := LoadFile("../../scenarios/mixed-workload.json")
	if err != nil {
		t.Fatal(err)
	}
	want := renderRunParallel(t, spec, 8, 2)

	opts, reg, tr := obsOpts(Options{Shards: 8, ShardThreads: 2})
	stop := make(chan struct{})
	scraped := make(chan struct{})
	go func() {
		defer close(scraped)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := reg.WritePrometheus(io.Discard); err != nil {
				t.Errorf("mid-run scrape: %v", err)
				return
			}
			_ = reg.Counter("sim_events_total").Value()
			time.Sleep(time.Millisecond)
		}
	}()
	got := renderRunObs(t, spec, opts)
	close(stop)
	<-scraped
	requireObserved(t, reg, tr)
	if !bytes.Equal(got, want) {
		t.Fatal("mid-run registry scrapes changed the thread-parallel report")
	}
}

// TestObsNeutralMemnet pins the contract on the live-runtime backend:
// real node.Node instances over an in-memory network, with the same
// registry and tracer threaded through node.Config.
func TestObsNeutralMemnet(t *testing.T) {
	want := renderRunObs(t, tinySpec(), Options{Backend: BackendMemnet})
	opts, reg, tr := obsOpts(Options{Backend: BackendMemnet})
	got := renderRunObs(t, tinySpec(), opts)
	requireObserved(t, reg, tr)
	if !bytes.Equal(got, want) {
		t.Fatal("metrics+trace instrumentation changed the memnet report")
	}
}
