package scenario

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// managementScenarioFiles are the checked-in range-cast/aggregation
// scenarios; the acceptance bar (aggregation accuracy >= 0.95 under
// churn, >= 0.9 under an 18% aggregation-targeted Byzantine mix,
// range-cast coverage >= 0.85 through a 40% outage) lives in their own
// assertion blocks.
var managementScenarioFiles = []string{
	filepath.Join("..", "..", "scenarios", "availability-census.json"),
	filepath.Join("..", "..", "scenarios", "rangecast-storm.json"),
	filepath.Join("..", "..", "scenarios", "byzantine-census.json"),
}

// tinyAggSpec is a fast spec exercising the whole new family: a
// rangecast, two aggregate ops, and a churn burst between them.
func tinyAggSpec() *Spec {
	return &Spec{
		Name: "tiny-agg",
		Seed: 3,
		Fleet: Fleet{
			Hosts:          120,
			Days:           1,
			ProtocolPeriod: dur("2m"),
		},
		Warmup: dur("2h"),
		Events: []Event{
			{At: dur("0s"), Aggregate: &AggregateBatch{
				Count: 5, BandLo: 0.33, TargetLo: 0.5, TargetHi: 1,
			}},
			{At: dur("2m"), ChurnBurst: &ChurnBurst{Fraction: 0.3, Duration: dur("20m")}},
			{At: dur("4m"), Aggregate: &AggregateBatch{
				Count: 5, Op: "avg", BandLo: 0.33, TargetLo: 0.5, TargetHi: 1,
			}},
			{At: dur("10m"), Rangecast: &RangecastBatch{
				Count: 5, BandLo: 0.33, TargetLo: 0.5, TargetHi: 1, Payload: "cfg",
			}},
		},
		Assertions: []Assertion{
			{Metric: "agg_completion_rate", Min: f(0.8)},
			{Metric: "agg_accuracy", Min: f(0.8)},
			{Metric: "rangecast_coverage", Min: f(0.5)},
		},
	}
}

// TestRunAggAndRangecastEvents smoke-tests the new event kinds and
// their metric names on the default backend.
func TestRunAggAndRangecastEvents(t *testing.T) {
	res, err := Run(tinyAggSpec(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed() {
		t.Fatalf("tiny agg scenario failed: %v", res.Failures)
	}
	for _, want := range []string{
		"agg_accuracy", "agg_coverage", "agg_completion_rate", "agg_mean_hops",
		"rangecast_coverage", "rangecast_spam_ratio",
	} {
		if _, ok := res.Metrics[want]; !ok {
			t.Errorf("metric %q missing: %v", want, res.Metrics)
		}
	}
}

// TestManagementScenariosPassOnBothBackends executes the checked-in
// census and storm scenarios on the simulator and the live memnet
// runtime and requires every in-spec assertion — including the 0.95
// accuracy bar under churn — to hold on each.
func TestManagementScenariosPassOnBothBackends(t *testing.T) {
	for _, path := range managementScenarioFiles {
		for _, backend := range []string{BackendSim, BackendMemnet} {
			t.Run(filepath.Base(path)+"/"+backend, func(t *testing.T) {
				spec, err := LoadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				res, err := Run(spec, Options{Backend: backend})
				if err != nil {
					t.Fatal(err)
				}
				if !res.Passed() {
					t.Fatalf("assertions failed: %v", res.Failures)
				}
				// The flat 0.95 accuracy bar is the churn-only standard;
				// adversarial scenarios carry their own (0.9 under an 18%
				// Byzantine mix) in their assertion blocks.
				if acc := res.Metrics["agg_accuracy"]; spec.Adversaries == nil && acc < 0.95 {
					t.Errorf("agg_accuracy %v below the 0.95 bar", acc)
				}
			})
		}
	}
}

// TestManagementScenariosDeterministicPerSeed pins bit-determinism:
// the same spec and seed produce identical metrics and event logs on
// each backend, partial-combining trees included.
func TestManagementScenariosDeterministicPerSeed(t *testing.T) {
	for _, path := range managementScenarioFiles {
		for _, backend := range []string{BackendSim, BackendMemnet} {
			t.Run(filepath.Base(path)+"/"+backend, func(t *testing.T) {
				run := func() *Result {
					spec, err := LoadFile(path)
					if err != nil {
						t.Fatal(err)
					}
					res, err := Run(spec, Options{Backend: backend})
					if err != nil {
						t.Fatal(err)
					}
					return res
				}
				a, b := run(), run()
				if !reflect.DeepEqual(a.Metrics, b.Metrics) {
					t.Errorf("metrics differ across identical runs:\n a: %v\n b: %v", a.Metrics, b.Metrics)
				}
				if !reflect.DeepEqual(a.EventLog, b.EventLog) {
					t.Errorf("event logs differ across identical runs:\n a: %v\n b: %v", a.EventLog, b.EventLog)
				}
			})
		}
	}
}

// TestAggregationSeedsIndependent: aggregation metrics are a function
// of the seed — identical for the same seed (pinned above), and the
// sweep aggregate reflects genuinely independent worlds (distinct
// seeds may coincide on saturated metrics, but the runs are separate).
func TestAggregationSeedsIndependent(t *testing.T) {
	multi, err := RunMany(tinyAggSpec(), SeedRange(3, 3), 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(multi.Runs) != 3 {
		t.Fatalf("runs = %d, want 3", len(multi.Runs))
	}
	agg, ok := multi.Metrics["agg_accuracy"]
	if !ok {
		t.Fatal("sweep aggregate missing agg_accuracy")
	}
	if agg.N != 3 {
		t.Errorf("agg_accuracy aggregated over %d runs, want 3", agg.N)
	}
	if agg.Min > agg.Mean || agg.Mean > agg.Max {
		t.Errorf("aggregate out of order: %+v", agg)
	}
}

// TestRunManyParallelMatchesSerialWithAggregation extends the parallel
// runner contract to the new family: a multi-seed sweep containing
// rangecast and aggregate events is bit-identical at any parallelism.
func TestRunManyParallelMatchesSerialWithAggregation(t *testing.T) {
	seeds := SeedRange(1, 4)
	serial, err := RunMany(tinyAggSpec(), seeds, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunMany(tinyAggSpec(), seeds, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Metrics, parallel.Metrics) {
		t.Fatalf("parallel aggregate diverged from serial:\nserial:   %v\nparallel: %v",
			serial.Metrics, parallel.Metrics)
	}
	for i := range seeds {
		if !reflect.DeepEqual(serial.Runs[i].Metrics, parallel.Runs[i].Metrics) {
			t.Fatalf("seed %d run diverged between serial and parallel", seeds[i])
		}
	}
}

// TestAuditLayerDoesNotPerturbCensus is the audit-enabled-unchanged
// regression for the new family: the checked-in census scenario ships
// with auditing on; stripping it must leave the metrics, event log,
// and rendered report byte-identical — auditing observes the new
// message types without perturbing honest runs.
func TestAuditLayerDoesNotPerturbCensus(t *testing.T) {
	path := filepath.Join("..", "..", "scenarios", "availability-census.json")
	render := func(withAudit bool) (string, *Result) {
		spec, err := LoadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !withAudit {
			spec.Fleet.Audit = nil
		}
		res, err := Run(spec, Options{})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		res.WriteReport(&buf)
		return buf.String() + "\n" + strings.Join(res.EventLog, "\n"), res
	}
	audited, auditedRes := render(true)
	plain, plainRes := render(false)
	if plain != audited {
		t.Fatalf("audit layer perturbed the census:\n--- audit off ---\n%s\n--- audit on ---\n%s", plain, audited)
	}
	if !plainRes.Passed() || !auditedRes.Passed() {
		t.Fatalf("census failed: %v / %v", plainRes.Failures, auditedRes.Failures)
	}
}

// TestRangecastAggregateSpecValidation covers the new spec blocks.
func TestRangecastAggregateSpecValidation(t *testing.T) {
	cases := []struct {
		name string
		json string
	}{
		{"rangecast zero count", `{"name":"x","events":[{"at":"0s","rangecast":{"count":0,"target_lo":0.2,"target_hi":0.8}}]}`},
		{"rangecast inverted band", `{"name":"x","events":[{"at":"0s","rangecast":{"count":5,"target_lo":0.8,"target_hi":0.2}}]}`},
		{"rangecast band above 1", `{"name":"x","events":[{"at":"0s","rangecast":{"count":5,"target_lo":0.2,"target_hi":1.2}}]}`},
		{"rangecast bad flavor", `{"name":"x","events":[{"at":"0s","rangecast":{"count":5,"target_lo":0.2,"target_hi":0.8,"flavor":"psychic"}}]}`},
		{"aggregate unknown op", `{"name":"x","events":[{"at":"0s","aggregate":{"count":5,"op":"median","target_lo":0.2,"target_hi":0.8}}]}`},
		{"aggregate bad initiator band", `{"name":"x","events":[{"at":"0s","aggregate":{"count":5,"band_lo":2,"target_lo":0.2,"target_hi":0.8}}]}`},
		{"two actions", `{"name":"x","events":[{"at":"0s","rangecast":{"count":5,"target_lo":0.2,"target_hi":0.8},"aggregate":{"count":5,"target_lo":0.2,"target_hi":0.8}}]}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Load(strings.NewReader(tc.json)); err == nil {
				t.Errorf("accepted malformed scenario: %s", tc.json)
			}
		})
	}
	// The empty band is deliberately legal.
	ok := `{"name":"x","events":[{"at":"0s","rangecast":{"count":5,"target_lo":0.5,"target_hi":0.5}}]}`
	if _, err := Load(strings.NewReader(ok)); err != nil {
		t.Errorf("empty band rejected: %v", err)
	}
}
