package scenario

import (
	"bytes"
	"testing"
	"time"
)

// renderRun executes spec with the given shard count and renders the
// full report — metrics, event log, assertion outcomes — to bytes.
func renderRun(t *testing.T, spec *Spec, shards int) []byte {
	t.Helper()
	res, err := Run(spec, Options{Shards: shards})
	if err != nil {
		t.Fatalf("shards=%d: %v", shards, err)
	}
	var buf bytes.Buffer
	res.WriteReport(&buf)
	for _, line := range res.EventLog {
		buf.WriteString(line)
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// TestShardCountInvariance pins the tentpole guarantee end to end: the
// checked-in mixed workload produces byte-identical collector output
// for shards ∈ {1, 2, 8}. (CI also runs this under -race.)
func TestShardCountInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-shard full-scenario sweep")
	}
	spec, err := LoadFile("../../scenarios/mixed-workload.json")
	if err != nil {
		t.Fatal(err)
	}
	want := renderRun(t, spec, 1)
	for _, n := range []int{2, 8} {
		if got := renderRun(t, spec, n); !bytes.Equal(got, want) {
			t.Fatalf("shards=%d output diverged from shards=1", n)
		}
	}
}

// TestShardEpochBoundaryChurn kills a quarter of the fleet exactly on a
// 20-minute trace-epoch boundary and restores it exactly on the next —
// the worst case for any engine that batches work per epoch — and
// checks the sharded schedules agree byte for byte.
func TestShardEpochBoundaryChurn(t *testing.T) {
	spec := &Spec{
		Name: "epoch-boundary-churn",
		Seed: 11,
		Fleet: Fleet{
			Hosts:          60,
			Days:           0.5,
			ProtocolPeriod: Duration(2 * time.Minute),
		},
		// Warmup of 40m puts event time zero exactly on an epoch
		// boundary (trace epochs are 20m).
		Warmup: Duration(40 * time.Minute),
		Events: []Event{
			{At: 0, ChurnBurst: &ChurnBurst{
				Fraction: 0.25, Duration: Duration(20 * time.Minute)}},
			{At: Duration(2 * time.Minute), AnycastBatch: &AnycastBatch{
				Count: 10, BandLo: 0, BandHi: 1.01, TargetLo: 0.5, TargetHi: 1}},
			{At: Duration(25 * time.Minute), AnycastBatch: &AnycastBatch{
				Count: 10, BandLo: 0, BandHi: 1.01, TargetLo: 0.5, TargetHi: 1}},
		},
	}
	want := renderRun(t, spec, 1)
	for _, n := range []int{2, 8} {
		if got := renderRun(t, spec, n); !bytes.Equal(got, want) {
			t.Fatalf("shards=%d output diverged from shards=1", n)
		}
	}
}

// TestShardsRejectedOnMemnet keeps the flag honest: the live-runtime
// backend has no event queue to shard.
func TestShardsRejectedOnMemnet(t *testing.T) {
	spec := &Spec{
		Name:  "memnet-shards",
		Seed:  1,
		Fleet: Fleet{Hosts: 20, Days: 0.5},
	}
	if _, err := Run(spec, Options{Backend: BackendMemnet, Shards: 4}); err == nil {
		t.Fatal("want error for -shards on memnet backend")
	}
}
