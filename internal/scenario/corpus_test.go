package scenario_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"avmem/internal/fuzzgen"
	"avmem/internal/scenario"
)

// TestFuzzCorpusReplays replays every minimized spec in
// scenarios/fuzz-corpus/ through the full metamorphic oracle battery.
// Each file is a bug the fuzzer once found — this suite keeps every
// fixed bug fixed. It lives in an external test package because the
// oracles (internal/fuzzgen) import this package.
func TestFuzzCorpusReplays(t *testing.T) {
	if testing.Short() {
		t.Skip("replays full scenario worlds")
	}
	dir := filepath.Join("..", "..", "scenarios", "fuzz-corpus")
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		t.Skip("no fuzz corpus checked in yet")
	}
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		found++
		path := filepath.Join(dir, e.Name())
		t.Run(e.Name(), func(t *testing.T) {
			spec, problems := scenario.LoadFileAll(path)
			if len(problems) > 0 {
				t.Fatalf("corpus spec no longer validates: %v", problems)
			}
			if !strings.Contains(spec.Description, "minimized by internal/fuzzgen") {
				t.Errorf("corpus spec lacks fuzzer provenance in its description: %q", spec.Description)
			}
			if vs := fuzzgen.Check(spec, fuzzgen.OracleConfig{}); len(vs) > 0 {
				t.Errorf("regressed: %d oracle violation(s), first: %s", len(vs), vs[0])
			}
		})
	}
	if found == 0 {
		t.Skip("fuzz-corpus directory is empty")
	}
}
