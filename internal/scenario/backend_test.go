package scenario

import (
	"reflect"
	"strings"
	"testing"
)

// TestRunMemnetBackend runs the tiny scenario on the live runtime: real
// node.Node agents over the deterministic memnet, same spec, same
// assertions.
func TestRunMemnetBackend(t *testing.T) {
	res, err := Run(tinySpec(), Options{Backend: BackendMemnet})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed() {
		t.Fatalf("tiny scenario failed on memnet: %v", res.Failures)
	}
	for _, want := range []string{"anycast_delivery_rate", "mean_sliver_size", "online_fraction", "max_sliver_size"} {
		if _, ok := res.Metrics[want]; !ok {
			t.Errorf("metric %q missing: %v", want, res.Metrics)
		}
	}
}

// TestMemnetBackendDeterministic asserts the memnet backend is
// bit-reproducible per seed: two runs of the same spec produce the same
// metrics and event log.
func TestMemnetBackendDeterministic(t *testing.T) {
	a, err := Run(tinySpec(), Options{Backend: BackendMemnet})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(tinySpec(), Options{Backend: BackendMemnet})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Metrics, b.Metrics) {
		t.Errorf("metrics differ across identical runs:\n a: %v\n b: %v", a.Metrics, b.Metrics)
	}
	if !reflect.DeepEqual(a.EventLog, b.EventLog) {
		t.Errorf("event logs differ across identical runs:\n a: %v\n b: %v", a.EventLog, b.EventLog)
	}
}

// TestBackendsAgreeOnVerdicts runs a scenario with every event kind on
// both backends and requires both to produce the same metric set and
// pass the same assertions — the engines may differ in exact values
// but not in shape or verdict.
func TestBackendsAgreeOnVerdicts(t *testing.T) {
	spec := tinySpec()
	spec.Events = append(spec.Events,
		Event{At: dur("10m"), Attack: &Attack{Cushion: 0.1}},
		Event{At: dur("11m"), MonitorNoise: &MonitorNoise{Error: 0.05, Staleness: dur("20m")}},
		Event{At: dur("12m"), MulticastBatch: &MulticastBatch{
			Count:    5,
			TargetLo: 0.5, TargetHi: 1,
		}},
	)
	spec.Assertions = append(spec.Assertions,
		Assertion{Metric: "multicast_reliability", Min: f(0.3)},
		Assertion{Metric: "attack_accept_rate", Max: f(1)},
	)
	sim, err := Run(spec, Options{Backend: BackendSim})
	if err != nil {
		t.Fatal(err)
	}
	mem, err := Run(spec, Options{Backend: BackendMemnet})
	if err != nil {
		t.Fatal(err)
	}
	if !sim.Passed() {
		t.Errorf("sim backend failed: %v", sim.Failures)
	}
	if !mem.Passed() {
		t.Errorf("memnet backend failed: %v", mem.Failures)
	}
	for name := range sim.Metrics {
		if _, ok := mem.Metrics[name]; !ok {
			t.Errorf("metric %q produced by sim but not memnet", name)
		}
	}
	for name := range mem.Metrics {
		if _, ok := sim.Metrics[name]; !ok {
			t.Errorf("metric %q produced by memnet but not sim", name)
		}
	}
}

func TestRunRejectsUnknownBackend(t *testing.T) {
	if _, err := Run(tinySpec(), Options{Backend: "quantum"}); err == nil ||
		!strings.Contains(err.Error(), "quantum") {
		t.Fatalf("want unknown-backend error, got %v", err)
	}
}

// TestRunManyMemnetBackend sweeps seeds on the memnet backend (each
// world independent, race-detector clean under -race).
func TestRunManyMemnetBackend(t *testing.T) {
	spec := tinySpec()
	spec.Fleet.Hosts = 60
	spec.Assertions = []Assertion{{Metric: "anycast_delivery_rate", Min: f(0.3)}}
	multi, err := RunMany(spec, SeedRange(1, 3), 3, Options{Backend: BackendMemnet})
	if err != nil {
		t.Fatal(err)
	}
	if !multi.Passed() {
		t.Fatalf("memnet sweep failed: %v", multi.Failures)
	}
	if got := multi.Metrics["anycast_delivery_rate"].N; got != 3 {
		t.Errorf("aggregate runs = %d, want 3", got)
	}
}
