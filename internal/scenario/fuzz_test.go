package scenario

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzLoadFileAll throws arbitrary bytes at the scenario loader: it
// must never panic, and anything it accepts with zero problems must be
// a spec that full validation also accepts — the loader and the
// validator may never disagree about what is runnable.
func FuzzLoadFileAll(f *testing.F) {
	f.Add([]byte(`{"name":"t","events":[{"at":"0s","attack":{"cushion":0.1}}]}`))
	f.Add([]byte(`{"name":"t","seed":3,"fleet":{"hosts":120,"days":1,"availability":"bimodal"},` +
		`"events":[{"at":"2m","aggregate":{"count":2,"op":"avg","target_lo":0.2,"target_hi":0.8,"redundancy":3}}],` +
		`"assertions":[{"metric":"agg_accuracy","min":0.5}]}`))
	f.Add([]byte(`{"name":"","bogus":1}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Add([]byte(`[]`))
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.json")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		spec, problems := LoadFileAll(path)
		if len(problems) > 0 {
			return
		}
		if spec == nil {
			t.Fatal("zero problems but nil spec")
		}
		if err := spec.Validate(); err != nil {
			t.Fatalf("LoadFileAll accepted a spec Validate rejects: %v", err)
		}
	})
}
