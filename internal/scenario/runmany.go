package scenario

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
)

// Aggregate summarizes one metric across the seeds that produced it.
type Aggregate struct {
	Mean, Min, Max float64
	// N is how many runs produced the metric (workload metrics exist
	// only when the corresponding event kind ran — normally all or none).
	N int
}

// MultiResult is the outcome of a multi-seed scenario sweep.
type MultiResult struct {
	Name  string
	Seeds []int64
	// Runs holds the per-seed results, in Seeds order regardless of
	// completion order.
	Runs []*Result
	// Metrics aggregates every metric across the runs.
	Metrics map[string]Aggregate
	// Failures lists violated assertions across all runs, each prefixed
	// with the seed that violated it.
	Failures []string
}

// Passed reports whether every assertion held in every run.
func (r *MultiResult) Passed() bool { return len(r.Failures) == 0 }

// WriteReport renders the aggregated metrics and assertion verdicts.
func (r *MultiResult) WriteReport(w io.Writer) {
	fmt.Fprintf(w, "== scenario %q × %d seeds ==\n", r.Name, len(r.Seeds))
	names := make([]string, 0, len(r.Metrics))
	for name := range r.Metrics {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "%-24s %-10s %-10s %-10s %s\n", "metric", "mean", "min", "max", "runs")
	for _, name := range names {
		a := r.Metrics[name]
		fmt.Fprintf(w, "%-24s %-10.4f %-10.4f %-10.4f %d\n", name, a.Mean, a.Min, a.Max, a.N)
	}
	if r.Passed() {
		fmt.Fprintf(w, "PASS: all assertions held across %d seed(s)\n", len(r.Seeds))
		return
	}
	for _, f := range r.Failures {
		fmt.Fprintf(w, "FAIL: %s\n", f)
	}
}

// RunMany executes the scenario once per seed and aggregates the
// metrics. Determinism is preserved per world, parallelism lives across
// worlds: each seed gets its own fully independent, single-threaded
// deployment (trace, RNG, event queue), at most parallelism of them in
// flight at once (<= 0 means GOMAXPROCS), and results are folded in
// seeds order — so the aggregate is bit-identical for any parallelism,
// including 1.
//
// opts.Log receives one completion line per seed (runs themselves are
// silent; interleaved per-event logs would be unreadable). A violated
// assertion is reported in MultiResult.Failures; err is reserved for
// scenarios that cannot execute.
func RunMany(spec *Spec, seeds []int64, parallelism int, opts Options) (*MultiResult, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if len(seeds) == 0 {
		return nil, fmt.Errorf("scenario: RunMany needs at least one seed")
	}
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > len(seeds) {
		parallelism = len(seeds)
	}
	logw := opts.Log
	if logw == nil {
		logw = io.Discard
	}

	runs := make([]*Result, len(seeds))
	errs := make([]error, len(seeds))
	var logMu sync.Mutex
	work := make(chan int)
	var wg sync.WaitGroup
	for p := 0; p < parallelism; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				// Each worker runs a private copy of the spec with its
				// seed; Run builds a fully independent world from it.
				s := *spec
				s.Seed = seeds[i]
				res, err := Run(&s, Options{Backend: opts.Backend, Shards: opts.Shards, ShardThreads: opts.ShardThreads})
				runs[i], errs[i] = res, err
				logMu.Lock()
				if err != nil {
					fmt.Fprintf(logw, "seed %d: error: %v\n", seeds[i], err)
				} else {
					verdict := "pass"
					if !res.Passed() {
						verdict = fmt.Sprintf("%d assertion(s) failed", len(res.Failures))
					}
					fmt.Fprintf(logw, "seed %d: done (%s)\n", seeds[i], verdict)
				}
				logMu.Unlock()
			}
		}()
	}
	for i := range seeds {
		work <- i
	}
	close(work)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("scenario: seed %d: %w", seeds[i], err)
		}
	}

	multi := &MultiResult{
		Name:    spec.Name,
		Seeds:   append([]int64(nil), seeds...),
		Runs:    runs,
		Metrics: make(map[string]Aggregate, len(Metrics)),
	}
	// Fold in seeds order: the aggregate must not depend on which world
	// finished first.
	for i, res := range runs {
		for name, v := range res.Metrics {
			a, ok := multi.Metrics[name]
			if !ok {
				a = Aggregate{Min: v, Max: v}
			}
			a.Mean += v
			if v < a.Min {
				a.Min = v
			}
			if v > a.Max {
				a.Max = v
			}
			a.N++
			multi.Metrics[name] = a
		}
		for _, f := range res.Failures {
			multi.Failures = append(multi.Failures, fmt.Sprintf("seed %d: %s", seeds[i], f))
		}
	}
	for name, a := range multi.Metrics {
		a.Mean /= float64(a.N)
		multi.Metrics[name] = a
	}
	return multi, nil
}

// SeedRange returns n consecutive seeds starting at first — the
// `avmemsim run -seeds n` convention.
func SeedRange(first int64, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = first + int64(i)
	}
	return out
}
