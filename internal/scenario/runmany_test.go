package scenario

import (
	"math"
	"reflect"
	"testing"
)

// TestRunDeterministic is the determinism contract of DESIGN.md §5: the
// same (trace, seed) pair — here regenerated from the same spec — must
// reproduce bit-identical scenario metrics, including across the cohort
// ticks and value-heap scheduler.
func TestRunDeterministic(t *testing.T) {
	a, err := Run(tinySpec(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(tinySpec(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Metrics, b.Metrics) {
		t.Fatalf("same (trace, seed) diverged:\n first: %v\nsecond: %v", a.Metrics, b.Metrics)
	}
	if !reflect.DeepEqual(a.EventLog, b.EventLog) {
		t.Fatalf("event logs diverged:\n first: %v\nsecond: %v", a.EventLog, b.EventLog)
	}
}

// TestRunManyParallelMatchesSerial is the parallel-runner contract:
// determinism per world, parallelism across worlds — the aggregate of a
// multi-seed sweep is bit-identical for any parallelism.
func TestRunManyParallelMatchesSerial(t *testing.T) {
	seeds := SeedRange(1, 4)
	serial, err := RunMany(tinySpec(), seeds, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunMany(tinySpec(), seeds, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Metrics, parallel.Metrics) {
		t.Fatalf("parallel aggregate diverged from serial:\nserial:   %v\nparallel: %v",
			serial.Metrics, parallel.Metrics)
	}
	for i := range seeds {
		if !reflect.DeepEqual(serial.Runs[i].Metrics, parallel.Runs[i].Metrics) {
			t.Fatalf("seed %d run diverged between serial and parallel", seeds[i])
		}
	}
}

func TestRunManyAggregates(t *testing.T) {
	seeds := SeedRange(1, 3)
	multi, err := RunMany(tinySpec(), seeds, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(multi.Seeds, seeds) {
		t.Errorf("Seeds = %v, want %v", multi.Seeds, seeds)
	}
	if len(multi.Runs) != len(seeds) {
		t.Fatalf("Runs = %d, want %d", len(multi.Runs), len(seeds))
	}
	a, ok := multi.Metrics["anycast_delivery_rate"]
	if !ok {
		t.Fatal("aggregate missing anycast_delivery_rate")
	}
	if a.N != len(seeds) {
		t.Errorf("N = %d, want %d", a.N, len(seeds))
	}
	if a.Min > a.Mean || a.Mean > a.Max {
		t.Errorf("aggregate out of order: %+v", a)
	}
	var sum float64
	for _, r := range multi.Runs {
		sum += r.Metrics["anycast_delivery_rate"]
	}
	if want := sum / float64(len(seeds)); math.Abs(a.Mean-want) > 1e-12 {
		t.Errorf("Mean = %v, want %v", a.Mean, want)
	}
}

func TestRunManyValidation(t *testing.T) {
	if _, err := RunMany(tinySpec(), nil, 1, Options{}); err == nil {
		t.Error("want error for no seeds")
	}
	bad := tinySpec()
	bad.Name = ""
	if _, err := RunMany(bad, SeedRange(1, 2), 1, Options{}); err == nil {
		t.Error("want error for invalid spec")
	}
}

func TestRunManyReportsPerSeedFailures(t *testing.T) {
	spec := tinySpec()
	spec.Assertions = []Assertion{{Metric: "anycast_delivery_rate", Min: f(1.1)}}
	multi, err := RunMany(spec, SeedRange(1, 2), 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if multi.Passed() {
		t.Fatal("impossible assertion passed")
	}
	if len(multi.Failures) != 2 {
		t.Fatalf("Failures = %v, want one per seed", multi.Failures)
	}
}
