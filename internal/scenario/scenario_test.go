package scenario

import (
	"strings"
	"testing"
)

// tinySpec returns a fast-but-real scenario: 120 hosts, short warmup,
// one churn burst and one anycast batch.
func tinySpec() *Spec {
	return &Spec{
		Name: "tiny",
		Seed: 1,
		Fleet: Fleet{
			Hosts:          120,
			Days:           1,
			ProtocolPeriod: dur("2m"),
		},
		Warmup: dur("2h"),
		Events: []Event{
			{At: dur("0s"), ChurnBurst: &ChurnBurst{Fraction: 0.3, Duration: dur("20m")}},
			// BandHi deliberately omitted: zero means "no upper bound".
			{At: dur("2m"), AnycastBatch: &AnycastBatch{
				Count:    10,
				TargetLo: 0.5, TargetHi: 1,
			}},
		},
		Assertions: []Assertion{
			{Metric: "anycast_delivery_rate", Min: f(0.5)},
			{Metric: "mean_sliver_size", Min: f(1)},
		},
	}
}

func dur(s string) Duration {
	var d Duration
	if err := d.UnmarshalJSON([]byte(`"` + s + `"`)); err != nil {
		panic(err)
	}
	return d
}

func f(v float64) *float64 { return &v }

func TestRunTinyScenario(t *testing.T) {
	res, err := Run(tinySpec(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed() {
		t.Fatalf("tiny scenario failed: %v", res.Failures)
	}
	for _, want := range []string{"anycast_delivery_rate", "mean_sliver_size", "online_fraction", "max_sliver_size"} {
		if _, ok := res.Metrics[want]; !ok {
			t.Errorf("metric %q missing: %v", want, res.Metrics)
		}
	}
	if len(res.EventLog) != 2 {
		t.Errorf("event log has %d entries, want 2: %v", len(res.EventLog), res.EventLog)
	}
}

func TestRunReportsAssertionFailure(t *testing.T) {
	spec := tinySpec()
	spec.Assertions = []Assertion{{Metric: "anycast_delivery_rate", Min: f(1.1)}}
	res, err := Run(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Passed() {
		t.Fatal("impossible assertion passed")
	}
	if !strings.Contains(res.Failures[0], "anycast_delivery_rate") {
		t.Errorf("failure message %q does not name the metric", res.Failures[0])
	}
}

func TestRunFailsAssertionOnMissingMetric(t *testing.T) {
	spec := tinySpec()
	spec.Assertions = []Assertion{{Metric: "multicast_reliability", Min: f(0.5)}}
	res, err := Run(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Passed() {
		t.Fatal("assertion on an unproduced metric passed")
	}
	if !strings.Contains(res.Failures[0], "no event produced") {
		t.Errorf("failure message %q does not explain the missing metric", res.Failures[0])
	}
}

func TestRunMulticastAndAttackEvents(t *testing.T) {
	spec := tinySpec()
	spec.Events = []Event{
		{At: dur("0s"), Attack: &Attack{Cushion: 0.1}},
		{At: dur("1m"), MonitorNoise: &MonitorNoise{Error: 0.05, Staleness: dur("10m")}},
		{At: dur("2m"), MulticastBatch: &MulticastBatch{
			Count:  5,
			BandLo: 0, BandHi: 1.01,
			TargetLo: 0.3, TargetHi: 1,
			Mode: "gossip", Fanout: 5, Rounds: 2, Period: dur("1s"),
		}},
	}
	spec.Assertions = nil
	res, err := Run(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"attack_accept_rate", "legit_reject_rate", "multicast_reliability", "multicast_spam_ratio"} {
		if _, ok := res.Metrics[want]; !ok {
			t.Errorf("metric %q missing after its event ran: %v", want, res.Metrics)
		}
	}
}

func TestLoadRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		json string
	}{
		{"not json", `{`},
		{"unknown field", `{"name":"x","bogus":1,"events":[{"at":"0s","attack":{"cushion":0}}]}`},
		{"missing name", `{"seed":1,"events":[{"at":"0s","attack":{"cushion":0}}]}`},
		{"no events", `{"name":"x"}`},
		{"numeric duration", `{"name":"x","warmup":300,"events":[{"at":"0s","attack":{"cushion":0}}]}`},
		{"two actions", `{"name":"x","events":[{"at":"0s","attack":{"cushion":0},"churn_burst":{"fraction":0.5,"duration":"5m"}}]}`},
		{"no action", `{"name":"x","events":[{"at":"0s"}]}`},
		{"bad fraction", `{"name":"x","events":[{"at":"0s","churn_burst":{"fraction":1.5,"duration":"5m"}}]}`},
		{"bad target", `{"name":"x","events":[{"at":"0s","anycast_batch":{"count":5,"target_lo":0.9,"target_hi":0.1}}]}`},
		{"bad policy", `{"name":"x","events":[{"at":"0s","anycast_batch":{"count":5,"target_lo":0.1,"target_hi":0.9,"policy":"psychic"}}]}`},
		{"retry missing", `{"name":"x","events":[{"at":"0s","anycast_batch":{"count":5,"target_lo":0.1,"target_hi":0.9,"policy":"retried-greedy"}}]}`},
		{"bad mode", `{"name":"x","events":[{"at":"0s","multicast_batch":{"count":5,"target_lo":0.1,"target_hi":0.9,"mode":"telepathy"}}]}`},
		{"inverted band", `{"name":"x","events":[{"at":"0s","anycast_batch":{"count":5,"band_lo":0.8,"band_hi":0.2,"target_lo":0.1,"target_hi":0.9}}]}`},
		{"band_lo out of range", `{"name":"x","events":[{"at":"0s","multicast_batch":{"count":5,"band_lo":1.5,"target_lo":0.1,"target_hi":0.9}}]}`},
		{"events out of order", `{"name":"x","events":[{"at":"5m","attack":{"cushion":0}},{"at":"1m","attack":{"cushion":0}}]}`},
		{"unknown metric", `{"name":"x","events":[{"at":"0s","attack":{"cushion":0}}],"assertions":[{"metric":"vibes","min":1}]}`},
		{"assertion without bound", `{"name":"x","events":[{"at":"0s","attack":{"cushion":0}}],"assertions":[{"metric":"attack_accept_rate"}]}`},
		{"min above max", `{"name":"x","events":[{"at":"0s","attack":{"cushion":0}}],"assertions":[{"metric":"attack_accept_rate","min":0.9,"max":0.1}]}`},
		{"tiny fleet", `{"name":"x","fleet":{"hosts":3},"events":[{"at":"0s","attack":{"cushion":0}}]}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Load(strings.NewReader(tc.json)); err == nil {
				t.Errorf("accepted malformed scenario: %s", tc.json)
			}
		})
	}
}

func TestLoadReportsKeyAndLine(t *testing.T) {
	// A typo'd key must fail with the offending key name and its line.
	src := `{
  "name": "x",
  "fleet": {
    "hostss": 120
  },
  "events": [{"at":"0s","attack":{"cushion":0}}]
}`
	_, err := Load(strings.NewReader(src))
	if err == nil {
		t.Fatal("typo'd key accepted")
	}
	if !strings.Contains(err.Error(), `"hostss"`) {
		t.Errorf("error %q does not name the offending key", err)
	}
	if !strings.Contains(err.Error(), "line 4") {
		t.Errorf("error %q does not locate line 4", err)
	}
}

func TestLoadLocatesKeyNotValue(t *testing.T) {
	// The typo'd key's text also appears earlier as a string value; the
	// reported line must be the key's, not the value's.
	src := `{
  "name": "hostss",
  "fleet": {
    "hostss": 120
  },
  "events": [{"at":"0s","attack":{"cushion":0}}]
}`
	_, err := Load(strings.NewReader(src))
	if err == nil {
		t.Fatal("typo'd key accepted")
	}
	if !strings.Contains(err.Error(), "line 4") {
		t.Errorf("error %q does not locate the key on line 4", err)
	}
}

func TestLoadLocatesShadowedKey(t *testing.T) {
	// The unknown field shares its name with a legitimate key earlier
	// in the file; the later (offending) occurrence must win.
	src := `{
  "name": "x",
  "fleet": {
    "name": "y"
  },
  "events": [{"at":"0s","attack":{"cushion":0}}]
}`
	_, err := Load(strings.NewReader(src))
	if err == nil {
		t.Fatal("typo'd key accepted")
	}
	if !strings.Contains(err.Error(), `"name"`) {
		t.Errorf("error %q does not name the offending key", err)
	}
	if !strings.Contains(err.Error(), "line 4") {
		t.Errorf("error %q does not locate the shadowed key on line 4", err)
	}
}

func TestLoadReportsTypeErrorLine(t *testing.T) {
	src := `{
  "name": "x",
  "seed": "not-a-number",
  "events": [{"at":"0s","attack":{"cushion":0}}]
}`
	_, err := Load(strings.NewReader(src))
	if err == nil {
		t.Fatal("mistyped value accepted")
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Errorf("error %q does not locate line 3", err)
	}
}

func TestLoadAcceptsMinimalValid(t *testing.T) {
	spec, err := Load(strings.NewReader(
		`{"name":"ok","events":[{"at":"0s","attack":{"cushion":0.1}}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "ok" || len(spec.Events) != 1 {
		t.Errorf("parsed spec wrong: %+v", spec)
	}
}

func TestEvaluateBounds(t *testing.T) {
	metrics := map[string]float64{"attack_accept_rate": 0.2}
	if fails := evaluate([]Assertion{{Metric: "attack_accept_rate", Min: f(0.1), Max: f(0.3)}}, metrics); len(fails) != 0 {
		t.Errorf("in-bounds value failed: %v", fails)
	}
	if fails := evaluate([]Assertion{{Metric: "attack_accept_rate", Min: f(0.25)}}, metrics); len(fails) != 1 {
		t.Errorf("below-min value passed: %v", fails)
	}
	if fails := evaluate([]Assertion{{Metric: "attack_accept_rate", Max: f(0.15)}}, metrics); len(fails) != 1 {
		t.Errorf("above-max value passed: %v", fails)
	}
}

func TestDurationRoundTrip(t *testing.T) {
	d := dur("90m")
	b, err := d.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Duration
	if err := back.UnmarshalJSON(b); err != nil {
		t.Fatal(err)
	}
	if back != d {
		t.Errorf("round trip %v != %v", back, d)
	}
}
