package scenario

import (
	"bytes"
	"runtime"
	"testing"
)

// renderRunParallel executes spec with the given shard and worker-thread
// counts and renders the full report to bytes (renderRun's parallel
// sibling).
func renderRunParallel(t *testing.T, spec *Spec, shards, threads int) []byte {
	t.Helper()
	res, err := Run(spec, Options{Shards: shards, ShardThreads: threads})
	if err != nil {
		t.Fatalf("shards=%d threads=%d: %v", shards, threads, err)
	}
	var buf bytes.Buffer
	res.WriteReport(&buf)
	for _, line := range res.EventLog {
		buf.WriteString(line)
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// TestParallelRunReproducible pins the thread-parallel determinism
// contract end to end on the checked-in mixed workload: a fixed
// (spec, shards) produces byte-identical reports across repeated runs,
// any worker-thread count >= 2, and GOMAXPROCS ∈ {1, 4}. (shards ≤ 1
// worlds never enter the parallel engine, so their byte-identity with
// the legacy order is already pinned by TestShardCountInvariance.)
func TestParallelRunReproducible(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run full-scenario sweep")
	}
	spec, err := LoadFile("../../scenarios/mixed-workload.json")
	if err != nil {
		t.Fatal(err)
	}
	want := renderRunParallel(t, spec, 8, 2)
	if got := renderRunParallel(t, spec, 8, 2); !bytes.Equal(got, want) {
		t.Fatal("repeated parallel run diverged")
	}
	if got := renderRunParallel(t, spec, 8, 8); !bytes.Equal(got, want) {
		t.Fatal("threads=8 diverged from threads=2")
	}
	for _, procs := range []int{1, 4} {
		old := runtime.GOMAXPROCS(procs)
		got := renderRunParallel(t, spec, 8, 4)
		runtime.GOMAXPROCS(old)
		if !bytes.Equal(got, want) {
			t.Fatalf("GOMAXPROCS=%d diverged", procs)
		}
	}
}

// TestParallelIneligibleMatchesSerial pins the silent-fallback rule:
// a spec whose configuration rules out lane-safe execution (here the
// byzantine scenario: adversaries + audit) must produce byte-identical
// output with and without -shard-threads.
func TestParallelIneligibleMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scenario sweep")
	}
	spec, err := LoadFile("../../scenarios/byzantine-census.json")
	if err != nil {
		t.Fatal(err)
	}
	want := renderRunParallel(t, spec, 8, 0)
	if got := renderRunParallel(t, spec, 8, 4); !bytes.Equal(got, want) {
		t.Fatal("-shard-threads changed output of a parallel-ineligible spec")
	}
}

// TestShardThreadsRejectedOnMemnet keeps the flag honest on the
// live-runtime backend.
func TestShardThreadsRejectedOnMemnet(t *testing.T) {
	spec := &Spec{
		Name:  "memnet-shard-threads",
		Seed:  1,
		Fleet: Fleet{Hosts: 20, Days: 0.5},
	}
	if _, err := Run(spec, Options{Backend: BackendMemnet, ShardThreads: 4}); err == nil {
		t.Fatal("want error for -shard-threads on memnet backend")
	}
}
