// Package audit is AVMEM's in-protocol defense against non-cooperative
// participants: every node runs an Auditor over the messages it
// receives and evicts peers whose behavior provably or persistently
// violates the protocol's verifiable predicates (paper §4.1, extended
// with the detect-and-repair machinery self-stabilizing overlays need).
//
// The Auditor distinguishes two evidence classes:
//
//   - Hard evidence is a provable protocol violation, checkable by the
//     receiver alone from the consistent pair hash and the monitoring
//     service: an availability claim that contradicts the AVMON
//     estimate beyond the configured tolerance, or a shuffle reply in
//     which the responder advertises itself (an honest CYCLON responder
//     samples only from its view, which never contains itself). Hard
//     hits carry enough weight to evict at once by default.
//   - Soft evidence is a failed in-neighbor predicate recheck on a
//     received operation message. Honest pairs fail this check too when
//     their availability views disagree (the paper's Figure-6 regime),
//     so soft hits carry a small weight and decay on every clean
//     observation — the hysteresis that keeps honest false positives
//     out while persistent selfish flooders still accumulate.
//
// Evicted peers land on the observer's blacklist: the membership layer
// drops them from the slivers, the operation router stops forwarding to
// them and discards their traffic, and the node ignores their shuffle
// exchanges — audited-out nodes stop receiving management traffic.
// Deployment harnesses share one Trail across all auditors to measure
// detection latency and false-positive rates.
//
// Architecture: DESIGN.md §10 (adversary & audit subsystem); §13 for
// how the range-cast/aggregation family is audited.
package audit

import (
	"fmt"
	"sort"
	"time"

	"avmem/internal/avmon"
	"avmem/internal/core"
	"avmem/internal/ids"
	"avmem/internal/ops"
	"avmem/internal/shuffle"
)

// Params tunes the suspicion model. The zero value takes the defaults.
type Params struct {
	// ClaimTolerance is the allowed claimed-over-monitored availability
	// excess before a claim counts as a lie (default 0.25: wide enough
	// for refresh-period staleness, offline-gap drift, and the paper's
	// ±0.05 monitor noise). The check is directional — only *inflation*
	// is evidence; a node understating itself harms nobody.
	ClaimTolerance float64
	// ClaimWarmup suppresses claim evidence before this virtual time
	// (default 1h): young monitoring estimates are volatile enough that
	// even honest cached claims drift past any reasonable tolerance.
	ClaimWarmup time.Duration
	// EvictThreshold is the suspicion score at which a peer is evicted
	// (default 3).
	EvictThreshold float64
	// HardWeight is the score added per provable violation (default
	// EvictThreshold: hard evidence evicts at once).
	HardWeight float64
	// SoftWeight is the score added per failed predicate recheck
	// (default 0.2).
	SoftWeight float64
	// Decay is the score subtracted per clean observation, floored at
	// zero (default 0.05) — the downward half of the hysteresis.
	Decay float64
	// RecheckCushion widens the predicate recheck like the §4.1
	// verification cushion (default 0.1).
	RecheckCushion float64
}

func (p *Params) applyDefaults() {
	if p.ClaimTolerance == 0 {
		p.ClaimTolerance = 0.25
	}
	if p.ClaimWarmup == 0 {
		p.ClaimWarmup = time.Hour
	}
	if p.EvictThreshold == 0 {
		p.EvictThreshold = 3
	}
	if p.HardWeight == 0 {
		p.HardWeight = p.EvictThreshold
	}
	if p.SoftWeight == 0 {
		p.SoftWeight = 0.2
	}
	if p.Decay == 0 {
		p.Decay = 0.05
	}
	if p.RecheckCushion == 0 {
		p.RecheckCushion = 0.1
	}
}

func (p Params) validate() error {
	if p.ClaimTolerance < 0 || p.ClaimTolerance > 1 {
		return fmt.Errorf("audit: ClaimTolerance must be in [0,1], got %v", p.ClaimTolerance)
	}
	if p.EvictThreshold <= 0 {
		return fmt.Errorf("audit: EvictThreshold must be positive, got %v", p.EvictThreshold)
	}
	if p.HardWeight <= 0 || p.SoftWeight < 0 || p.Decay < 0 {
		return fmt.Errorf("audit: weights must be non-negative (HardWeight positive), got hard %v soft %v decay %v",
			p.HardWeight, p.SoftWeight, p.Decay)
	}
	if p.RecheckCushion < 0 || p.RecheckCushion > 1 {
		return fmt.Errorf("audit: RecheckCushion must be in [0,1], got %v", p.RecheckCushion)
	}
	return nil
}

// Eviction is one blacklist entry in the deployment-wide Trail.
type Eviction struct {
	Observer ids.NodeID
	Suspect  ids.NodeID
	At       time.Duration
	// Reason names the evidence class that crossed the threshold.
	Reason string
}

// Trail is the deployment-wide eviction registry harnesses share across
// auditors: in a real deployment this information would travel as
// signed accusations; here it is the measurement surface for detection
// latency and false-positive metrics. Trail is not safe for concurrent
// use (each deployment engine is single-threaded on its virtual clock).
type Trail struct {
	evictions []Eviction
	first     map[ids.NodeID]time.Duration
}

// NewTrail creates an empty registry.
func NewTrail() *Trail {
	return &Trail{first: make(map[ids.NodeID]time.Duration, 32)}
}

// record appends one eviction.
func (t *Trail) record(e Eviction) {
	t.evictions = append(t.evictions, e)
	if _, ok := t.first[e.Suspect]; !ok {
		t.first[e.Suspect] = e.At
	}
}

// Evictions returns all recorded evictions in observation order.
func (t *Trail) Evictions() []Eviction { return t.evictions }

// FirstEviction returns the earliest time any observer evicted suspect.
func (t *Trail) FirstEviction(suspect ids.NodeID) (time.Duration, bool) {
	at, ok := t.first[suspect]
	return at, ok
}

// Suspects returns every node evicted by at least one observer, in
// deterministic (sorted) order.
func (t *Trail) Suspects() []ids.NodeID {
	out := make([]ids.NodeID, 0, len(t.first))
	for id := range t.first {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Config wires an Auditor to its node.
type Config struct {
	// Self is the observing node.
	Self ids.NodeID
	// Params tunes the suspicion model (zero value = defaults).
	Params Params
	// Predicate is the deployment's AVMEM predicate (rechecks).
	Predicate *core.Predicate
	// Monitor answers availability queries (the AVMON cross-check).
	Monitor avmon.Service
	// SelfInfo returns the node's own identity with cached availability
	// (the receiver half of the predicate recheck).
	SelfInfo func() core.NodeInfo
	// Clock supplies the current virtual or wall time.
	Clock func() time.Duration
	// Hashes optionally shares the deployment's pair-hash cache.
	Hashes *ids.HashCache
	// Trail optionally shares the deployment-wide eviction registry.
	Trail *Trail
	// Obs optionally shares the deployment-wide audit instruments
	// (instrument.go); nil leaves the auditor unmetered.
	Obs *Instruments
}

func (c Config) validate() error {
	if c.Self.IsNil() {
		return fmt.Errorf("audit: Config.Self is required")
	}
	if c.Predicate == nil {
		return fmt.Errorf("audit: Config.Predicate is required")
	}
	if c.Monitor == nil {
		return fmt.Errorf("audit: Config.Monitor is required")
	}
	if c.SelfInfo == nil {
		return fmt.Errorf("audit: Config.SelfInfo is required")
	}
	if c.Clock == nil {
		return fmt.Errorf("audit: Config.Clock is required")
	}
	return c.Params.validate()
}

// suspect is the per-peer audit state.
type suspect struct {
	score   float64
	evicted bool
}

// Auditor is one node's receiving-side audit state: per-peer suspicion
// scores and the local blacklist. It implements ops.Auditor, so the
// operation router consults it on every inbound message, and its
// Blocked method doubles as the membership layer's blocklist. Auditor
// is not safe for concurrent use; the owning node serializes calls
// (exactly like core.Membership).
type Auditor struct {
	cfg Config
	// peers holds value entries (not pointers): suspicion state is two
	// words, so boxing every suspect behind its own allocation bought
	// nothing but allocator traffic on the audit hot path.
	peers map[ids.NodeID]suspect
	// evicted counts local evictions (cheap accessor for probes).
	evictions int
}

var (
	_ ops.Auditor           = (*Auditor)(nil)
	_ ops.AggPartialAuditor = (*Auditor)(nil)
)

// New builds an Auditor.
func New(cfg Config) (*Auditor, error) {
	cfg.Params.applyDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Auditor{cfg: cfg, peers: make(map[ids.NodeID]suspect, 64)}, nil
}

// Blocked implements ops.Auditor: whether id has been audited out.
func (a *Auditor) Blocked(id ids.NodeID) bool {
	s, ok := a.peers[id]
	return ok && s.evicted
}

// Suspicion returns the current suspicion score of id.
func (a *Auditor) Suspicion(id ids.NodeID) float64 {
	if s, ok := a.peers[id]; ok {
		return s.score
	}
	return 0
}

// Evictions returns how many peers this auditor has evicted.
func (a *Auditor) Evictions() int { return a.evictions }

// ObserveInbound implements ops.Auditor: it audits one delivered
// message and reports whether the node should process it (false =
// sender blacklisted, drop). It understands operation messages
// (availability claim + in-neighbor predicate recheck) and shuffle
// exchanges (availability claim; self-advertising reply check).
func (a *Auditor) ObserveInbound(from ids.NodeID, msg any) bool {
	if from.IsNil() || from == a.cfg.Self {
		return true
	}
	if a.Blocked(from) {
		return false
	}
	switch m := msg.(type) {
	case ops.AnycastMsg:
		a.observeOp(from, m.SenderAvail)
	case ops.MulticastMsg:
		a.observeOp(from, m.SenderAvail)
	// The range-cast/aggregation family gets the claim cross-check but
	// not the §4.1 predicate recheck: its traffic is band-filtered, not
	// predicate-greedy, and flows repeatedly between the same
	// vertical-sliver pairs — rechecking those pairs on every tree
	// message turns ordinary estimate drift into accumulated soft
	// evidence against honest peers (observed as false evictions in the
	// census regression). Claims remain hard evidence everywhere.
	case ops.RangecastMsg:
		a.observeClaim(from, m.SenderAvail)
	case ops.AggMsg:
		a.observeClaim(from, m.SenderAvail)
	case ops.AggReplyMsg:
		a.observeClaim(from, m.SenderAvail)
	// ops.AggResultMsg is deliberately not audited here: like
	// DeliveredMsg it travels root→origin, and the root is rarely the
	// origin's predicate neighbor — any recheck would score honest
	// roots as suspects. Result integrity is defended elsewhere: the
	// origin's collector accepts only results bound by its own minted
	// token and the recorded root's identity, redundant disjoint trees
	// cross-check the value, and tree members' merged partials face the
	// router's PDF sanity checks, which feed SuspectAggPartial below.
	// See DESIGN.md §13 ("trust model").
	case shuffle.Request:
		a.observeShuffle(from, m.SenderAvail, m.Entries, false)
	case shuffle.Reply:
		a.observeShuffle(from, m.SenderAvail, m.Entries, true)
	}
	return !a.Blocked(from)
}

// observeOp audits one operation message: the AVMON claim cross-check
// (hard) and the §4.1 in-neighbor predicate recheck (soft). A sender
// the monitor cannot answer for yields no evidence either way — a
// young or degraded monitor (e.g. the distributed estimator before its
// pings accumulate) must not turn honest peers into suspects.
func (a *Auditor) observeOp(from ids.NodeID, claim float64) {
	est, known := a.cfg.Monitor.Availability(from)
	if !known {
		return
	}
	if a.claimLie(claim, est) {
		a.hit(from, a.cfg.Params.HardWeight, "availability-claim")
		return
	}
	if !a.recheck(from, est) {
		a.hit(from, a.cfg.Params.SoftWeight, "predicate-recheck")
		return
	}
	a.clean(from)
}

// observeClaim audits only the availability claim of one message —
// the hard AVMON cross-check, with no predicate recheck (see the
// range-cast/aggregation cases in ObserveInbound for why).
func (a *Auditor) observeClaim(from ids.NodeID, claim float64) {
	est, known := a.cfg.Monitor.Availability(from)
	if !known {
		return
	}
	if a.claimLie(claim, est) {
		a.hit(from, a.cfg.Params.HardWeight, "availability-claim")
		return
	}
	a.clean(from)
}

// observeShuffle audits one coarse-view exchange: for replies, the
// self-advertising violation (hard proof needing no monitor — an
// honest responder's sample never contains itself), then the claim
// cross-check when the monitor can answer.
func (a *Auditor) observeShuffle(from ids.NodeID, claim float64, entries []shuffle.Entry, reply bool) {
	if reply {
		for i := range entries {
			if entries[i].ID == from {
				a.hit(from, a.cfg.Params.HardWeight, "self-advertising-reply")
				return
			}
		}
	}
	est, known := a.cfg.Monitor.Availability(from)
	if !known {
		return
	}
	if a.claimLie(claim, est) {
		a.hit(from, a.cfg.Params.HardWeight, "availability-claim")
		return
	}
	a.clean(from)
}

// SuspectAggPartial implements ops.AggPartialAuditor: the router
// reports a merged aggregation partial that contradicts the
// deployment's availability PDF (contributor count beyond the band's
// expected census, or value moments outside the band hull). The
// violation is statistical, not provable — a stale census estimate can
// flag an honest relay once — so it lands as decaying soft evidence:
// persistent manglers accumulate toward eviction, one-off noise decays
// away through clean observations.
func (a *Auditor) SuspectAggPartial(from ids.NodeID, reason string) {
	if from.IsNil() || from == a.cfg.Self || a.Blocked(from) {
		return
	}
	a.hit(from, a.cfg.Params.SoftWeight, reason)
}

// claimLie reports whether the sender inflated its availability claim
// beyond the monitor's estimate. Absent claims are not evidence, and
// neither are claims observed before ClaimWarmup — a monitor without
// history misjudges honest nodes.
func (a *Auditor) claimLie(claim, est float64) bool {
	if claim <= 0 {
		return false // no claim attached (pre-audit senders)
	}
	if a.cfg.Clock() < a.cfg.Params.ClaimWarmup {
		return false
	}
	return claim-est > a.cfg.Params.ClaimTolerance
}

// recheck evaluates the consistent in-neighbor predicate M(from, self)
// from the receiver's own information, cushioned like §4.1.
func (a *Auditor) recheck(from ids.NodeID, est float64) bool {
	match, _ := a.cfg.Predicate.EvalNodes(
		core.NodeInfo{ID: from, Availability: est},
		a.cfg.SelfInfo(),
		a.cfg.Params.RecheckCushion, a.cfg.Hashes)
	return match
}

// hit raises a peer's suspicion and evicts it at the threshold.
func (a *Auditor) hit(from ids.NodeID, weight float64, reason string) {
	s := a.peers[from]
	if s.evicted {
		return
	}
	a.cfg.Obs.suspicion(reason)
	s.score += weight
	a.peers[from] = s
	if s.score < a.cfg.Params.EvictThreshold {
		return
	}
	s.evicted = true
	a.peers[from] = s
	a.evictions++
	a.cfg.Obs.eviction()
	if a.cfg.Trail != nil {
		a.cfg.Trail.record(Eviction{
			Observer: a.cfg.Self,
			Suspect:  from,
			At:       a.cfg.Clock(),
			Reason:   reason,
		})
	}
}

// clean decays a peer's suspicion after a well-formed message — the
// downward half of the hysteresis that absorbs occasional noise-driven
// misses without letting persistent misbehavior hide.
func (a *Auditor) clean(from ids.NodeID) {
	s, ok := a.peers[from]
	if !ok || s.evicted || s.score == 0 {
		return
	}
	a.cfg.Obs.clean()
	s.score -= a.cfg.Params.Decay
	if s.score < 0 {
		s.score = 0
	}
	a.peers[from] = s
}
