package audit

import (
	"math/rand"
	"testing"
	"time"

	"avmem/internal/avmon"
	"avmem/internal/core"
	"avmem/internal/ids"
	"avmem/internal/ops"
	"avmem/internal/shuffle"
)

// fixture builds an auditor over a static monitor and a permissive
// predicate, with a controllable clock past the claim warmup.
type fixture struct {
	auditor *Auditor
	monitor avmon.Static
	now     time.Duration
	trail   *Trail
}

func newFixture(t *testing.T, params Params) *fixture {
	t.Helper()
	f := &fixture{
		monitor: avmon.Static{
			"self":  0.9,
			"peer":  0.5,
			"other": 0.7,
		},
		now:   10 * time.Hour,
		trail: NewTrail(),
	}
	pred, err := core.NewPredicate(0.1,
		core.UniformRandom{P: 1}, core.UniformRandom{P: 1})
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(Config{
		Self:      "self",
		Params:    params,
		Predicate: pred,
		Monitor:   f.monitor,
		SelfInfo:  func() core.NodeInfo { return core.NodeInfo{ID: "self", Availability: 0.9} },
		Clock:     func() time.Duration { return f.now },
		Trail:     f.trail,
	})
	if err != nil {
		t.Fatal(err)
	}
	f.auditor = a
	return f
}

func TestClaimInflationEvictsAtOnce(t *testing.T) {
	f := newFixture(t, Params{})
	// An honest claim equals the monitor estimate: no suspicion.
	if !f.auditor.ObserveInbound("peer", ops.AnycastMsg{SenderAvail: 0.5}) {
		t.Fatal("honest message dropped")
	}
	if s := f.auditor.Suspicion("peer"); s != 0 {
		t.Fatalf("honest claim raised suspicion %v", s)
	}
	// Inflating beyond the tolerance is provable lying: one message
	// evicts.
	f.auditor.ObserveInbound("peer", ops.AnycastMsg{SenderAvail: 0.97})
	if !f.auditor.Blocked("peer") {
		t.Fatal("inflated claim did not evict")
	}
	if at, ok := f.trail.FirstEviction("peer"); !ok || at != f.now {
		t.Fatalf("trail missing eviction: %v %v", at, ok)
	}
	// Blocked senders stay dropped.
	if f.auditor.ObserveInbound("peer", ops.AnycastMsg{SenderAvail: 0.5}) {
		t.Fatal("blocked sender accepted")
	}
}

func TestUnderstatementIsNotEvidence(t *testing.T) {
	f := newFixture(t, Params{})
	f.auditor.ObserveInbound("other", ops.AnycastMsg{SenderAvail: 0.1})
	if f.auditor.Blocked("other") || f.auditor.Suspicion("other") != 0 {
		t.Fatal("understating availability was treated as a lie")
	}
}

func TestClaimWarmupSuppressesEarlyEvidence(t *testing.T) {
	f := newFixture(t, Params{})
	f.now = 30 * time.Minute // before the 1h default warmup
	f.auditor.ObserveInbound("peer", ops.AnycastMsg{SenderAvail: 0.97})
	if f.auditor.Blocked("peer") {
		t.Fatal("claim evidence accepted before warmup")
	}
	f.now = 2 * time.Hour
	f.auditor.ObserveInbound("peer", ops.AnycastMsg{SenderAvail: 0.97})
	if !f.auditor.Blocked("peer") {
		t.Fatal("claim evidence ignored after warmup")
	}
}

func TestSelfAdvertisingReplyEvicts(t *testing.T) {
	f := newFixture(t, Params{})
	// Replies naming other nodes are fine.
	f.auditor.ObserveInbound("peer", shuffle.Reply{
		SenderAvail: 0.5,
		Entries:     []shuffle.Entry{{ID: "other"}},
	})
	if f.auditor.Blocked("peer") {
		t.Fatal("clean reply evicted the sender")
	}
	// A reply naming its own sender is standalone proof of poisoning.
	f.auditor.ObserveInbound("peer", shuffle.Reply{
		SenderAvail: 0.5,
		Entries:     []shuffle.Entry{{ID: "other"}, {ID: "peer"}},
	})
	if !f.auditor.Blocked("peer") {
		t.Fatal("self-advertising reply not evicted")
	}
	// Requests legitimately contain the sender (the CYCLON self-entry).
	f2 := newFixture(t, Params{})
	f2.auditor.ObserveInbound("peer", shuffle.Request{
		SenderAvail: 0.5,
		Entries:     []shuffle.Entry{{ID: "peer"}},
	})
	if f2.auditor.Blocked("peer") {
		t.Fatal("self-entry in a request treated as a violation")
	}
}

// rejectingFixture builds an auditor whose predicate rejects everything
// (every recheck fails) over a noisy monitor — the hysteresis regime.
func TestSuspicionHysteresisUnderMonitorNoise(t *testing.T) {
	now := 10 * time.Hour
	base := avmon.Static{"self": 0.9, "peer": 0.5}
	rng := rand.New(rand.NewSource(42))
	noisy, err := avmon.NewNoisy(base, 0.05, 0, func() time.Duration { return now }, rng)
	if err != nil {
		t.Fatal(err)
	}
	// A predicate that accepts a pair only when the pair hash is below
	// the threshold f=0.5: with real hashes some rechecks fail, which
	// combined with monitor noise gives intermittent soft hits.
	pred, err := core.NewPredicate(0.1,
		core.UniformRandom{P: 0.5}, core.UniformRandom{P: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	params := Params{SoftWeight: 0.2, Decay: 0.1, EvictThreshold: 3}
	a, err := New(Config{
		Self:      "self",
		Params:    params,
		Predicate: pred,
		Monitor:   noisy,
		SelfInfo:  func() core.NodeInfo { return core.NodeInfo{ID: "self", Availability: 0.9} },
		Clock:     func() time.Duration { return now },
	})
	if err != nil {
		t.Fatal(err)
	}
	// The recheck outcome for a fixed pair is hash-determined; find out
	// which way this pair falls and assert the hysteresis accordingly.
	failing := ids.PairHash("peer", "self") > 0.5+params.RecheckCushion
	for i := 0; i < 10; i++ {
		a.ObserveInbound("peer", ops.AnycastMsg{SenderAvail: 0.5})
	}
	s := a.Suspicion("peer")
	if failing {
		// Ten soft hits at 0.2 = 2.0: suspicion grows but stays below
		// the eviction threshold — a persistently disagreeing honest
		// pair is not evicted by soft evidence alone this quickly.
		if s == 0 {
			t.Fatal("failing rechecks raised no suspicion")
		}
		if a.Blocked("peer") {
			t.Fatal("soft evidence evicted before threshold")
		}
		// Clean observations decay the score back down (hysteresis): a
		// well-formed shuffle request has no recheck, so it is clean.
		before := a.Suspicion("peer")
		a.ObserveInbound("peer", shuffle.Request{SenderAvail: 0.5})
		if got := a.Suspicion("peer"); got >= before {
			t.Fatalf("clean observation did not decay suspicion: %v -> %v", before, got)
		}
	} else {
		if s != 0 {
			t.Fatalf("passing rechecks raised suspicion %v", s)
		}
	}
}

func TestSoftEvidenceEventuallyEvicts(t *testing.T) {
	f := newFixture(t, Params{SoftWeight: 1, EvictThreshold: 3, Decay: 0.1})
	// Force rechecks to fail by making the predicate reject everything.
	pred, err := core.NewPredicate(0.1,
		core.UniformRandom{P: 0}, core.UniformRandom{P: 0})
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(Config{
		Self:      "self",
		Params:    Params{SoftWeight: 1, EvictThreshold: 3, Decay: 0.1, RecheckCushion: 0.001},
		Predicate: pred,
		Monitor:   f.monitor,
		SelfInfo:  func() core.NodeInfo { return core.NodeInfo{ID: "self", Availability: 0.9} },
		Clock:     func() time.Duration { return 10 * time.Hour },
		Trail:     f.trail,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if a.Blocked("peer") {
			t.Fatalf("evicted after %d soft hits, want 3", i)
		}
		a.ObserveInbound("peer", ops.AnycastMsg{SenderAvail: 0.5})
	}
	if !a.Blocked("peer") {
		t.Fatal("persistent soft evidence never evicted")
	}
	if a.Evictions() != 1 {
		t.Fatalf("Evictions() = %d, want 1", a.Evictions())
	}
}

func TestTrailAggregation(t *testing.T) {
	tr := NewTrail()
	tr.record(Eviction{Observer: "a", Suspect: "x", At: 5 * time.Minute})
	tr.record(Eviction{Observer: "b", Suspect: "x", At: 2 * time.Minute})
	tr.record(Eviction{Observer: "a", Suspect: "y", At: 7 * time.Minute})
	if got := len(tr.Evictions()); got != 3 {
		t.Fatalf("evictions = %d, want 3", got)
	}
	if at, ok := tr.FirstEviction("x"); !ok || at != 5*time.Minute {
		// first is observation-ordered, not time-ordered
		t.Fatalf("first eviction of x = %v, %v", at, ok)
	}
	if got := tr.Suspects(); len(got) != 2 || got[0] != "x" || got[1] != "y" {
		t.Fatalf("suspects = %v", got)
	}
}

func TestUnverifiableClaimIsNotEvidence(t *testing.T) {
	f := newFixture(t, Params{})
	// The monitor does not know "stranger": its claim cannot be
	// cross-checked, and the predicate recheck also fails (unknown
	// availability) — a soft hit, not an eviction.
	f.auditor.ObserveInbound("stranger", ops.AnycastMsg{SenderAvail: 0.99})
	if f.auditor.Blocked("stranger") {
		t.Fatal("unverifiable sender evicted on one message")
	}
}

func TestParamValidation(t *testing.T) {
	bad := []Params{
		{ClaimTolerance: 2},
		{EvictThreshold: -1},
		{Decay: -0.1},
		{RecheckCushion: 1.5},
	}
	pred, _ := core.NewPredicate(0.1, core.UniformRandom{P: 1}, core.UniformRandom{P: 1})
	for i, p := range bad {
		_, err := New(Config{
			Self:      "self",
			Params:    p,
			Predicate: pred,
			Monitor:   avmon.Static{},
			SelfInfo:  func() core.NodeInfo { return core.NodeInfo{} },
			Clock:     func() time.Duration { return 0 },
		})
		if err == nil {
			t.Errorf("case %d: invalid params accepted: %+v", i, p)
		}
	}
}
