package audit

import (
	"fmt"

	"avmem/internal/obs"
)

// Instruments is the audit layer's shared instrument set. One
// Instruments value serves every per-node Auditor in a deployment
// (counters are atomic, auditors run serialized by the engine), so
// the registry sees fleet-wide totals. A nil *Instruments disables
// recording at the cost of one nil check per audit verdict.
type Instruments struct {
	suspicions map[string]*obs.Counter // audit_suspicions_total{reason=...}
	evictions  *obs.Counter            // audit_evictions_total
	cleans     *obs.Counter            // audit_cleans_total
}

// suspicionReasons is the closed set of evidence labels hit() is
// called with; pre-registering them keeps the hot path lock-free (the
// map is read-only after NewInstruments).
var suspicionReasons = []string{
	"availability-claim",
	"predicate-recheck",
	"self-advertising-reply",
	"agg-count-bounds",
	"agg-hull-bounds",
	"agg-avg-bounds",
}

// NewInstruments registers the audit metrics in reg. Returns nil on a
// nil registry (uninstrumented deployment).
func NewInstruments(reg *obs.Registry) *Instruments {
	if reg == nil {
		return nil
	}
	ins := &Instruments{
		suspicions: make(map[string]*obs.Counter, len(suspicionReasons)),
		evictions:  reg.Counter("audit_evictions_total"),
		cleans:     reg.Counter("audit_cleans_total"),
	}
	for _, reason := range suspicionReasons {
		ins.suspicions[reason] = reg.Counter(fmt.Sprintf("audit_suspicions_total{reason=%q}", reason))
	}
	return ins
}

// suspicion records one piece of evidence against a peer.
func (ins *Instruments) suspicion(reason string) {
	if ins == nil {
		return
	}
	// Unknown reasons fall through to a nil counter, which no-ops —
	// a new evidence label degrades silently rather than panicking.
	ins.suspicions[reason].Inc()
}

// eviction records a terminal eviction verdict.
func (ins *Instruments) eviction() {
	if ins == nil {
		return
	}
	ins.evictions.Inc()
}

// clean records a decay step from consistent behavior.
func (ins *Instruments) clean() {
	if ins == nil {
		return
	}
	ins.cleans.Inc()
}
