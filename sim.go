package avmem

import (
	"fmt"
	"time"

	"avmem/internal/core"
	"avmem/internal/exp"
	"avmem/internal/ids"
	"avmem/internal/ops"
	"avmem/internal/trace"
)

// SimConfig parameterizes a simulated deployment. The zero value plus a
// Seed gives the paper's full setting (1442 hosts, 7-day Overnet-like
// churn, ε 0.1, predicates I.B + II.B).
type SimConfig struct {
	// Hosts is the population size (default 1442, the Overnet trace).
	Hosts int
	// Days is the trace length (default 7).
	Days float64
	// Seed drives all randomness.
	Seed int64
	// Epsilon, C1, C2 are the predicate parameters (defaults 0.1, 3, 3).
	Epsilon, C1, C2 float64
	// Cushion is the verification cushion (paper: 0 or 0.1).
	Cushion float64
	// VerifyInbound makes every node verify message senders.
	VerifyInbound bool
	// MonitorErr adds bounded error to availability queries.
	MonitorErr float64
	// MonitorStaleness serves stale availability snapshots.
	MonitorStaleness time.Duration
	// DistributedMonitor replaces the availability oracle with the
	// AVMON-style ping-based monitoring overlay (estimates start cold;
	// allow extra warmup).
	DistributedMonitor bool
	// ProtocolPeriod is the discovery period (default 1 minute).
	ProtocolPeriod time.Duration
	// Trace overrides the synthetic churn trace entirely.
	Trace *Trace
	// Backend selects the execution engine: "sim" (default) runs the
	// virtual-time simulator's deployment engine; "memnet" runs real
	// live-runtime nodes on a deterministic in-process network, on the
	// same virtual clock. The API is identical on both.
	Backend string
}

// AutoInitiator asks the simulation to pick a random online initiator.
const AutoInitiator = NodeID("")

// Sim is a deterministic AVMEM deployment on a virtual clock: the whole
// population, its churn, membership maintenance, and operations —
// executed by the simulator's deployment engine or, with the "memnet"
// backend, by real live-runtime nodes over an in-process network. Sim
// is not safe for concurrent use.
type Sim struct {
	w exp.Deployment
}

// NewSim assembles a simulated deployment at virtual time zero. Call
// Warmup before measuring anything — slivers need time to form (the
// paper warms up for 24 hours).
func NewSim(cfg SimConfig) (*Sim, error) {
	if cfg.Hosts < 0 {
		return nil, fmt.Errorf("avmem: Hosts must be non-negative, got %d", cfg.Hosts)
	}
	if cfg.Days < 0 {
		return nil, fmt.Errorf("avmem: Days must be non-negative, got %v", cfg.Days)
	}
	tr := cfg.Trace
	if tr == nil {
		gen := trace.DefaultGenConfig(cfg.Seed)
		if cfg.Hosts > 0 {
			gen.Hosts = cfg.Hosts
		}
		if cfg.Days > 0 {
			gen.Epochs = int(cfg.Days * 24 * 3)
		}
		var err error
		tr, err = trace.Generate(gen)
		if err != nil {
			return nil, fmt.Errorf("avmem: generating churn trace: %w", err)
		}
	}
	wc := exp.WorldConfig{
		Seed:               cfg.Seed,
		Trace:              tr,
		Epsilon:            cfg.Epsilon,
		C1:                 cfg.C1,
		C2:                 cfg.C2,
		Cushion:            cfg.Cushion,
		VerifyInbound:      cfg.VerifyInbound,
		MonitorErr:         cfg.MonitorErr,
		MonitorStaleness:   cfg.MonitorStaleness,
		DistributedMonitor: cfg.DistributedMonitor,
		ProtocolPeriod:     cfg.ProtocolPeriod,
	}
	w, err := exp.NewDeployment(cfg.Backend, wc)
	if err != nil {
		return nil, fmt.Errorf("avmem: %w", err)
	}
	return &Sim{w: w}, nil
}

// Warmup advances virtual time by d, letting the overlay form.
func (s *Sim) Warmup(d time.Duration) { s.w.Warmup(d) }

// RunFor advances virtual time by d.
func (s *Sim) RunFor(d time.Duration) { s.w.RunFor(d) }

// Now returns the current virtual time.
func (s *Sim) Now() time.Duration { return s.w.Now() }

// Nodes returns every node identity in the deployment.
func (s *Sim) Nodes() []NodeID { return s.w.Hosts() }

// OnlineNodes returns the currently online nodes.
func (s *Sim) OnlineNodes() []NodeID { return s.w.OnlineHosts() }

// Availability returns a node's current long-term availability.
func (s *Sim) Availability(id NodeID) float64 { return s.w.TrueAvailability(id) }

// Online reports whether a node is currently online.
func (s *Sim) Online(id NodeID) bool { return s.w.Online(id) }

// SliverSizes returns a node's current horizontal and vertical sliver
// sizes.
func (s *Sim) SliverSizes(id NodeID) (hs, vs int) {
	m := s.w.Membership(id)
	if m == nil {
		return 0, 0
	}
	return m.SliverSize(core.SliverHorizontal), m.SliverSize(core.SliverVertical)
}

// Neighbors returns a snapshot of a node's current AVMEM neighbors
// under a flavor.
func (s *Sim) Neighbors(id NodeID, f Flavor) []Neighbor {
	m := s.w.Membership(id)
	if m == nil {
		return nil
	}
	return m.CopyNeighbors(f)
}

// MeanDegree returns the mean neighbor count across online nodes.
func (s *Sim) MeanDegree() float64 { return s.w.MeanDegree() }

// PickNode returns a random online node with availability in [lo, hi).
func (s *Sim) PickNode(lo, hi float64) (NodeID, bool) { return s.w.PickInitiator(lo, hi) }

// Eligible counts online nodes inside the target (the denominator of
// multicast reliability).
func (s *Sim) Eligible(t Target) int { return s.w.EligibleFor(t) }

// opHorizon bounds how long a single operation is allowed to run in
// virtual time before Anycast/Multicast give up waiting. Retried
// anycasts can burn many ack timeouts, and gossip runs for several
// periods; two minutes covers every configuration in the paper.
const opHorizon = 2 * time.Minute

// Anycast initiates an anycast from the given node (or a random online
// node for AutoInitiator), advances virtual time until the operation
// reaches a terminal state, and returns its record.
func (s *Sim) Anycast(from NodeID, target Target, opts AnycastOptions) (AnycastRecord, error) {
	initiator, err := s.resolveInitiator(from)
	if err != nil {
		return AnycastRecord{}, err
	}
	id, err := s.w.Anycast(initiator, target, opts)
	if err != nil {
		return AnycastRecord{}, err
	}
	col := s.w.Collector()
	deadline := s.w.Now() + opHorizon
	for s.w.Now() < deadline {
		s.w.RunFor(time.Second)
		rec, ok := col.Anycast(id)
		if ok && rec.Outcome != ops.OutcomePending {
			return *rec, nil
		}
	}
	rec, _ := col.Anycast(id)
	return *rec, nil
}

// Multicast initiates a multicast from the given node (or a random
// online node for AutoInitiator), advances virtual time until
// dissemination settles, and returns its record. The Eligible field is
// filled automatically from the current online population.
func (s *Sim) Multicast(from NodeID, target Target, opts MulticastOptions) (MulticastRecord, error) {
	initiator, err := s.resolveInitiator(from)
	if err != nil {
		return MulticastRecord{}, err
	}
	opts.Eligible = s.w.EligibleFor(target)
	id, err := s.w.Multicast(initiator, target, opts)
	if err != nil {
		return MulticastRecord{}, err
	}
	settle := 30 * time.Second
	if opts.Mode == ops.Gossip {
		settle += time.Duration(opts.Rounds+4) * opts.Period
	}
	s.w.RunFor(settle)
	rec, ok := s.w.Collector().Multicast(id)
	if !ok {
		return MulticastRecord{}, fmt.Errorf("avmem: multicast record vanished")
	}
	return *rec, nil
}

func (s *Sim) resolveInitiator(from NodeID) (NodeID, error) {
	if from != AutoInitiator {
		if s.w.Membership(from) == nil {
			return ids.Nil, fmt.Errorf("avmem: unknown node %q", from)
		}
		return from, nil
	}
	id, ok := s.w.PickInitiator(0, 1.01)
	if !ok {
		return ids.Nil, fmt.Errorf("avmem: no online nodes to initiate from")
	}
	return id, nil
}
