package avmem

// Documentation checks, run by the CI docs job (and ordinary go test):
// markdown links in the top-level documents must resolve, and every
// package must carry a godoc package comment. They live at the repo
// root so the repository layout is in reach without configuration.

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdFiles are the documents the link check covers.
var mdFiles = []string{
	"README.md",
	"DESIGN.md",
	"EXPERIMENTS.md",
	"ROADMAP.md",
	"PAPER.md",
	"CHANGES.md",
}

// mdLink matches inline markdown links [text](target); images share
// the same shape with a leading bang, which the pattern tolerates.
var mdLink = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

// TestMarkdownLinks verifies every relative link in the top-level
// documents points at a file or directory that exists. External
// schemes are skipped — CI must not depend on the network — and pure
// fragment links are out of scope (section anchors move with
// headings; file existence is the bit-rot that actually happens).
func TestMarkdownLinks(t *testing.T) {
	for _, file := range mdFiles {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Errorf("%s: %v", file, err)
			continue
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") ||
				strings.HasPrefix(target, "#") {
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			rel := filepath.FromSlash(target)
			if _, err := os.Stat(filepath.Join(filepath.Dir(file), rel)); err != nil {
				t.Errorf("%s: broken link %q: %v", file, m[1], err)
			}
		}
	}
}

// TestPackageComments enforces the documentation bar: every package in
// the module — internal, cmd, examples, and the root — carries a godoc
// package comment. New packages fail here until they say what they are
// for.
func TestPackageComments(t *testing.T) {
	err := filepath.WalkDir(".", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		if name := d.Name(); path != "." && (strings.HasPrefix(name, ".") || name == "scripts" || name == "scenarios") {
			return filepath.SkipDir
		}
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, path, func(fi os.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments|parser.PackageClauseOnly)
		if err != nil {
			t.Errorf("%s: %v", path, err)
			return nil
		}
		for name, pkg := range pkgs {
			documented := false
			for _, f := range pkg.Files {
				if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
					documented = true
					break
				}
			}
			if !documented {
				t.Errorf("package %s (%s) has no godoc package comment", name, path)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
