// Quickstart: build a simulated AVMEM deployment, let the overlay form,
// and run one of each management operation.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"avmem"
)

func main() {
	// A 600-host deployment with Overnet-like churn. Seeded, so every
	// run prints the same numbers.
	sim, err := avmem.NewSim(avmem.SimConfig{Hosts: 600, Days: 3, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	// Slivers need time to form; the paper warms up for 24 hours.
	fmt.Println("warming up 12h of simulated time...")
	sim.Warmup(12 * time.Hour)
	fmt.Printf("online nodes: %d, mean AVMEM degree: %.1f\n\n",
		len(sim.OnlineNodes()), sim.MeanDegree())

	// Range-anycast: find any node with availability in [0.85, 0.95].
	target, err := avmem.NewRange(0.85, 0.95)
	if err != nil {
		log.Fatal(err)
	}
	rec, err := sim.Anycast(avmem.AutoInitiator, target, avmem.DefaultAnycastOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("range-anycast %s: %v in %d hops, %v\n",
		target, rec.Outcome, rec.Hops, rec.Latency.Round(time.Millisecond))

	// Threshold-anycast with retried-greedy forwarding: survive
	// offline next-hops by spending a retry budget.
	thr, err := avmem.NewThreshold(0.9)
	if err != nil {
		log.Fatal(err)
	}
	rec, err = sim.Anycast(avmem.AutoInitiator, thr, avmem.AnycastOptions{
		Policy: avmem.RetriedGreedy,
		Flavor: avmem.HSVS,
		TTL:    6,
		Retry:  8,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("threshold-anycast %s (retried-greedy): %v in %d hops, %v\n",
		thr, rec.Outcome, rec.Hops, rec.Latency.Round(time.Millisecond))

	// Range-multicast by flooding: deliver to every node in the range.
	mrec, err := sim.Multicast(avmem.AutoInitiator, target, avmem.DefaultMulticastOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("range-multicast %s (flood): reached %.0f%% of %d eligible nodes, worst latency %v\n",
		target, 100*mrec.Reliability(), mrec.Eligible, mrec.WorstLatency().Round(time.Millisecond))

	// The same multicast by gossip: cheaper, slower, a bit lossier.
	gossip := avmem.MulticastOptions{
		Anycast: avmem.DefaultAnycastOptions(),
		Mode:    avmem.Gossip,
		Flavor:  avmem.HSVS,
		Fanout:  5,
		Rounds:  2,
		Period:  time.Second,
	}
	mrec, err = sim.Multicast(avmem.AutoInitiator, target, gossip)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("range-multicast %s (gossip): reached %.0f%% of %d eligible nodes, worst latency %v\n",
		target, 100*mrec.Reliability(), mrec.Eligible, mrec.WorstLatency().Round(time.Millisecond))
}
