// Availability-dependent publish-subscribe (paper §1, use case I, and
// the AVCast motivation): publish packets only to subscribers above a
// minimum availability, which both bounds delivery cost and gives
// members an incentive to stay online — higher availability buys better
// delivery.
//
//	go run ./examples/pubsub
package main

import (
	"fmt"
	"log"
	"time"

	"avmem"
)

func main() {
	sim, err := avmem.NewSim(avmem.SimConfig{Hosts: 600, Days: 3, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	sim.Warmup(12 * time.Hour)

	// Three subscription tiers by availability threshold.
	tiers := []struct {
		name string
		b    float64
	}{
		{"gold (av > 0.8)", 0.8},
		{"silver (av > 0.5)", 0.5},
		{"bronze (av > 0.2)", 0.2},
	}

	fmt.Println("publishing one event per tier, flooding within the tier:")
	for _, tier := range tiers {
		target, err := avmem.NewThreshold(tier.b)
		if err != nil {
			log.Fatal(err)
		}
		rec, err := sim.Multicast(avmem.AutoInitiator, target, avmem.DefaultMulticastOptions())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-20s %4d subscribers online, delivery %.0f%%, spam %.1f%%, worst latency %v\n",
			tier.name, rec.Eligible, 100*rec.Reliability(), 100*rec.SpamRatio(),
			rec.WorstLatency().Round(time.Millisecond))
	}

	// Gossip variant for the widest tier: fewer messages, more latency.
	fmt.Println("\nsame bronze event, gossip dissemination (fanout 5, 2 rounds):")
	bronze, _ := avmem.NewThreshold(0.2)
	rec, err := sim.Multicast(avmem.AutoInitiator, bronze, avmem.MulticastOptions{
		Anycast: avmem.DefaultAnycastOptions(),
		Mode:    avmem.Gossip,
		Flavor:  avmem.HSVS,
		Fanout:  5,
		Rounds:  2,
		Period:  time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  delivery %.0f%%, worst latency %v\n",
		100*rec.Reliability(), rec.WorstLatency().Round(time.Millisecond))

	// The incentive story: per-tier delivery percentages reward higher
	// availability, since better-provisioned tiers are smaller, denser,
	// and closer-knit in the overlay.
}
