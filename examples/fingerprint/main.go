// Fingerprinting an availability band (paper §1, use case II): use
// range-multicast to query every node in an availability range and
// correlate a second attribute with availability — the paper's example
// is "find the average bandwidth of nodes below a certain availability".
//
// The multicast reaches the band's members; each would report its
// attribute to the initiator. Here the per-node attribute (bandwidth)
// is synthesized deterministically from the node identity, and we
// aggregate over the nodes the multicast actually reached.
//
//	go run ./examples/fingerprint
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"avmem"
)

// bandwidthOf synthesizes a stable per-node attribute: 1–100 Mbps,
// derived from the node id (a stand-in for a real measured value).
func bandwidthOf(id avmem.NodeID) float64 {
	h := 0
	for _, c := range string(id) {
		h = h*31 + int(c)
	}
	if h < 0 {
		h = -h
	}
	return 1 + float64(h%990)/10
}

func main() {
	sim, err := avmem.NewSim(avmem.SimConfig{Hosts: 600, Days: 3, Seed: 31})
	if err != nil {
		log.Fatal(err)
	}
	sim.Warmup(12 * time.Hour)

	bands := [][2]float64{
		{0.0, 0.2},
		{0.2, 0.4},
		{0.4, 0.6},
		{0.6, 0.8},
		{0.8, 1.0},
	}
	fmt.Println("fingerprinting bandwidth per availability band via range-multicast:")
	fmt.Printf("%-14s %-10s %-10s %-12s %s\n", "band", "eligible", "reached", "mean-Mbps", "p95-Mbps")
	for _, b := range bands {
		target, err := avmem.NewRange(b[0], b[1])
		if err != nil {
			log.Fatal(err)
		}
		if sim.Eligible(target) == 0 {
			fmt.Printf("[%.1f,%.1f)      (empty)\n", b[0], b[1])
			continue
		}
		rec, err := sim.Multicast(avmem.AutoInitiator, target, avmem.DefaultMulticastOptions())
		if err != nil {
			log.Fatal(err)
		}
		// Aggregate the attribute over the nodes actually reached.
		values := make([]float64, 0, len(rec.Delivered))
		for nodeID := range rec.Delivered {
			values = append(values, bandwidthOf(avmem.NodeID(nodeID)))
		}
		if len(values) == 0 {
			fmt.Printf("[%.1f,%.1f)      %-10d (multicast reached nobody)\n", b[0], b[1], rec.Eligible)
			continue
		}
		sort.Float64s(values)
		var sum float64
		for _, v := range values {
			sum += v
		}
		p95 := values[len(values)*95/100]
		fmt.Printf("[%.1f,%.1f)      %-10d %-10d %-12.1f %.1f\n",
			b[0], b[1], rec.Eligible, len(values), sum/float64(len(values)), p95)
	}
	fmt.Println("\n(a real deployment would carry the measured attribute in the reply payload)")
}
