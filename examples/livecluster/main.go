// Live cluster: run real AVMEM nodes — goroutines, wall-clock timers,
// and an in-memory transport with simulated latency — instead of the
// virtual-time simulator. The same program works over TCP by swapping
// the transport (see cmd/avmemnode for the TCP daemon).
//
//	go run ./examples/livecluster
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"avmem"
)

func main() {
	const n = 40
	rng := rand.New(rand.NewSource(3))

	// Availabilities come from the Overnet-like model; in a real
	// deployment a crawler would have measured them.
	pdf := avmem.OvernetPDF()
	monitor := avmem.StaticMonitor{}
	peers := make([]avmem.NodeID, n)
	nStar := 0.0
	for i := range peers {
		peers[i] = avmem.NodeID(fmt.Sprintf("10.0.0.%d:4000", i+1))
		av := pdf.Sample(rng)
		monitor[peers[i]] = av
		nStar += av
	}
	pred, err := avmem.NewPaperPredicate(0.1, 3, 3, nStar, pdf)
	if err != nil {
		log.Fatal(err)
	}

	tr := avmem.NewMemoryTransport(5*time.Millisecond, 20*time.Millisecond)
	defer tr.Close()

	peerSource := avmem.PeerFunc(func(self avmem.NodeID) []avmem.NodeID {
		out := make([]avmem.NodeID, 0, n-1)
		for _, p := range peers {
			if p != self {
				out = append(out, p)
			}
		}
		return out
	})

	fmt.Printf("starting %d live nodes (N*=%.1f)...\n", n, nStar)
	nodes := make([]*avmem.Node, 0, n)
	for _, id := range peers {
		node, err := avmem.NewNode(avmem.NodeConfig{
			Self:           id,
			Predicate:      pred,
			Monitor:        monitor,
			Peers:          peerSource,
			Transport:      tr,
			ProtocolPeriod: 100 * time.Millisecond, // accelerated for the demo
			RefreshPeriod:  2 * time.Second,
			VerifyInbound:  true,
			Cushion:        0.1,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := node.Start(); err != nil {
			log.Fatal(err)
		}
		defer node.Stop()
		nodes = append(nodes, node)
	}

	// Let discovery run a few periods.
	time.Sleep(time.Second)
	var totalHS, totalVS int
	for _, node := range nodes {
		hs, vs := node.SliverSizes()
		totalHS += hs
		totalVS += vs
	}
	fmt.Printf("after 1s: mean HS %.1f, mean VS %.1f per node\n",
		float64(totalHS)/n, float64(totalVS)/n)

	// A low-availability node locates a high-availability one.
	var initiator *avmem.Node
	for _, node := range nodes {
		if monitor[node.Self()] < 0.3 {
			initiator = node
			break
		}
	}
	if initiator == nil {
		initiator = nodes[0]
	}
	target, err := avmem.NewThreshold(0.8)
	if err != nil {
		log.Fatal(err)
	}
	id, err := initiator.Anycast(target, avmem.AnycastOptions{
		Policy: avmem.RetriedGreedy,
		Flavor: avmem.HSVS,
		TTL:    6,
		Retry:  8,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("node %s (av %.2f) anycasts to %s...\n",
		initiator.Self(), monitor[initiator.Self()], target)

	deadline := time.After(5 * time.Second)
	for {
		rec, ok := initiator.AnycastResult(id)
		if ok && rec.Outcome != avmem.OutcomePending {
			fmt.Printf("outcome: %v after %d hops in %v\n",
				rec.Outcome, rec.Hops, rec.Latency.Round(time.Millisecond))
			return
		}
		select {
		case <-deadline:
			fmt.Println("outcome: still pending after 5s")
			return
		case <-time.After(20 * time.Millisecond):
		}
	}
}
