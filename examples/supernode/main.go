// Supernode selection (paper §1, use case I): a p2p system needs
// supernodes with a minimum threshold availability, akin to
// FastTrack-style overlays. Any node — including low-availability ones —
// can issue a threshold-anycast to locate one, and the overlay keeps
// selfish low-availability nodes from spamming candidates they are not
// entitled to contact.
//
//	go run ./examples/supernode
package main

import (
	"fmt"
	"log"
	"time"

	"avmem"
)

func main() {
	sim, err := avmem.NewSim(avmem.SimConfig{Hosts: 600, Days: 3, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	sim.Warmup(12 * time.Hour)

	// Supernode criterion: availability above 0.9.
	supernode, err := avmem.NewThreshold(0.9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("candidate supernodes online now: %d of %d nodes\n\n",
		sim.Eligible(supernode), len(sim.OnlineNodes()))

	// Ten different low-availability members each locate a supernode.
	// Low-availability initiators are the interesting case: they are
	// far from the target in availability space, and in a
	// non-cooperative system they are also the likeliest to cheat.
	found := 0
	var totalHops int
	var totalLatency time.Duration
	for i := 0; i < 10; i++ {
		initiator, ok := sim.PickNode(0, 1.0/3.0)
		if !ok {
			log.Fatal("no low-availability node online")
		}
		rec, err := sim.Anycast(initiator, supernode, avmem.AnycastOptions{
			Policy: avmem.RetriedGreedy, // survive stale liveness
			Flavor: avmem.HSVS,
			TTL:    6,
			Retry:  8,
		})
		if err != nil {
			log.Fatal(err)
		}
		status := "FAILED"
		if rec.Outcome == avmem.OutcomeDelivered {
			status = "found"
			found++
			totalHops += rec.Hops
			totalLatency += rec.Latency
		}
		fmt.Printf("  member av=%.2f → supernode %s (%d hops, %v)\n",
			sim.Availability(initiator), status, rec.Hops, rec.Latency.Round(time.Millisecond))
	}
	if found == 0 {
		fmt.Println("\nno supernode found — try a longer warmup")
		return
	}
	fmt.Printf("\nselected %d/10 supernodes, mean %.1f hops, mean latency %v\n",
		found, float64(totalHops)/float64(found),
		(totalLatency / time.Duration(found)).Round(time.Millisecond))
}
