// Replica placement (paper §1, use case II): choose file-replica
// locations with availability in a chosen band, as in TotalRecall-style
// automated availability management. Placing replicas on mid-range
// hosts spreads load away from over-used stable nodes while still
// bounding the number of replicas needed for a durability target.
//
//	go run ./examples/replicas
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"avmem"
)

func main() {
	sim, err := avmem.NewSim(avmem.SimConfig{Hosts: 600, Days: 3, Seed: 23})
	if err != nil {
		log.Fatal(err)
	}
	sim.Warmup(12 * time.Hour)

	// Durability target: P(at least one replica online) >= 0.999.
	// With independent replicas of availability a, we need
	// n >= log(1-0.999)/log(1-a).
	const durability = 0.999
	band := [2]float64{0.44, 0.54} // mid-availability hosts
	a := (band[0] + band[1]) / 2
	replicas := int(math.Ceil(math.Log(1-durability) / math.Log(1-a)))
	fmt.Printf("placing %d replicas on hosts with availability in [%.2f,%.2f] "+
		"(durability target %.3f)\n\n", replicas, band[0], band[1], durability)

	target, err := avmem.NewRange(band[0], band[1])
	if err != nil {
		log.Fatal(err)
	}

	// Issue one range-anycast per replica; distinct initiators model
	// the writer's coordinator fanning the work out.
	placed := make(map[avmem.NodeID]bool, replicas)
	attempts := 0
	for len(placed) < replicas && attempts < replicas*5 {
		attempts++
		rec, err := sim.Anycast(avmem.AutoInitiator, target, avmem.AnycastOptions{
			Policy: avmem.RetriedGreedy,
			Flavor: avmem.HSVS,
			TTL:    6,
			Retry:  8,
		})
		if err != nil {
			log.Fatal(err)
		}
		if rec.Outcome != avmem.OutcomeDelivered {
			continue
		}
		// In a full system the delivery would carry the responder's
		// identity in its payload; here we sample a distinct in-band
		// host to stand in for it.
		host, ok := sim.PickNode(band[0], band[1])
		if !ok {
			break
		}
		if placed[host] {
			continue
		}
		placed[host] = true
		fmt.Printf("  replica %d on %s (availability %.2f) — anycast took %d hops, %v\n",
			len(placed), host, sim.Availability(host), rec.Hops, rec.Latency.Round(time.Millisecond))
	}
	if len(placed) < replicas {
		fmt.Printf("\nonly placed %d/%d replicas (band too sparse right now)\n", len(placed), replicas)
		return
	}

	// Verify the achieved durability from the actual availabilities.
	pAllDown := 1.0
	for host := range placed {
		pAllDown *= 1 - sim.Availability(host)
	}
	fmt.Printf("\nachieved durability: %.5f (target %.3f)\n", 1-pAllDown, durability)
}
