// Package examples_test guards the example programs against API drift:
// each example is a standalone main package with no test files, so
// nothing else fails when the public avmem surface moves under them.
// This smoke test compiles every example with the local toolchain.
package examples_test

import (
	"os"
	"os/exec"
	"testing"
)

func TestExamplesBuild(t *testing.T) {
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not on PATH")
	}
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	built := 0
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		built++
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command(goTool, "build", "-o", os.DevNull, "./"+name)
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Errorf("example %s does not build: %v\n%s", name, err, out)
			}
		})
	}
	if built < 6 {
		t.Errorf("expected at least 6 example programs, found %d", built)
	}
}
