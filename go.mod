module avmem

go 1.24
