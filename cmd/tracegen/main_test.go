package main

import (
	"os"
	"path/filepath"
	"testing"

	"avmem/internal/trace"
)

func TestRunWritesReadableTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.trace")
	err := run([]string{"-hosts", "60", "-days", "0.5", "-seed", "9", "-o", path})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := trace.Read(f)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Hosts() != 60 {
		t.Errorf("hosts = %d, want 60", tr.Hosts())
	}
	if tr.Epochs() != 36 { // 0.5 days × 72 epochs/day
		t.Errorf("epochs = %d, want 36", tr.Epochs())
	}
}

func TestRunPDFVariants(t *testing.T) {
	for _, pdf := range []string{"overnet", "uniform", "bimodal"} {
		path := filepath.Join(t.TempDir(), pdf+".trace")
		if err := run([]string{"-hosts", "40", "-days", "0.5", "-pdf", pdf, "-o", path}); err != nil {
			t.Errorf("pdf %q: %v", pdf, err)
		}
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	if err := run([]string{"-pdf", "martian"}); err == nil {
		t.Error("want error for unknown pdf")
	}
	if err := run([]string{"-hosts", "0"}); err == nil {
		t.Error("want error for zero hosts")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("want error for unknown flag")
	}
	if err := run([]string{"-o", "/no/such/dir/file.trace", "-hosts", "10", "-days", "0.1"}); err == nil {
		t.Error("want error for unwritable output")
	}
}
