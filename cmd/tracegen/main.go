// Command tracegen synthesizes Overnet-like churn traces in the
// avmem-trace v1 text format (see internal/trace).
//
// Usage:
//
//	tracegen -hosts 1442 -days 7 -seed 1 -o overnet.trace
//	tracegen -pdf uniform -hosts 500 -o uniform.trace
//	tracegen -stats -o /dev/null          # print summary only
//
// Architecture: DESIGN.md §5 (deterministic simulation — churn traces)
// and §8 (parameter defaults).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"avmem/internal/avdist"
	"avmem/internal/stats"
	"avmem/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	hosts := fs.Int("hosts", trace.OvernetHosts, "population size")
	days := fs.Float64("days", trace.OvernetDays, "trace length in days")
	seed := fs.Int64("seed", 1, "generator seed")
	pdfName := fs.String("pdf", "overnet", "availability model: overnet, uniform, bimodal")
	session := fs.Float64("session", 9, "mean session length in epochs at availability 0.5")
	diurnal := fs.Float64("diurnal", 0.1, "diurnal modulation amplitude")
	out := fs.String("o", "", "output file (default stdout)")
	showStats := fs.Bool("stats", false, "print trace statistics to stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := trace.GenConfig{
		Hosts:             *hosts,
		Epochs:            int(*days * 24 * 3),
		Epoch:             trace.DefaultEpoch,
		Seed:              *seed,
		MeanSessionEpochs: *session,
		DiurnalAmplitude:  *diurnal,
	}
	switch *pdfName {
	case "overnet":
		// Generator default.
	case "uniform":
		cfg.PDF = avdist.Uniform(avdist.DefaultBuckets)
	case "bimodal":
		pdf, err := avdist.Bimodal(avdist.DefaultBuckets, 0.2, 0.9, 0.3)
		if err != nil {
			return err
		}
		cfg.PDF = pdf
	default:
		return fmt.Errorf("unknown pdf %q (want overnet, uniform, bimodal)", *pdfName)
	}

	start := time.Now()
	tr, err := trace.Generate(cfg)
	if err != nil {
		return err
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := trace.Write(w, tr); err != nil {
		return err
	}

	if *showStats {
		av := tr.Availabilities(tr.Epochs() - 1)
		s := stats.Summarize(av)
		fmt.Fprintf(os.Stderr, "hosts=%d epochs=%d duration=%v\n", tr.Hosts(), tr.Epochs(), tr.Duration())
		fmt.Fprintf(os.Stderr, "availability: mean=%.3f median=%.3f min=%.3f max=%.3f\n",
			s.Mean, s.Median, s.Min, s.Max)
		fmt.Fprintf(os.Stderr, "fraction below 0.3: %.3f (Overnet paper: ~0.5)\n",
			stats.FractionBelow(av, 0.3))
		fmt.Fprintf(os.Stderr, "mean online per epoch: %.1f (N*)\n", tr.MeanOnline())
		fmt.Fprintf(os.Stderr, "generated in %v\n", time.Since(start).Round(time.Millisecond))
	}
	return nil
}
