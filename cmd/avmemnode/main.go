// Command avmemnode runs one live AVMEM node over TCP — the deployable
// agent. Peers and availabilities come from a crawler-dump file (one
// "host:port availability" pair per line), the story the paper tells
// for pre-run-time distribution of the availability PDF.
//
// Usage:
//
//	avmemnode -listen 10.0.0.5:4000 -peers peers.txt &
//	avmemnode -listen 10.0.0.6:4000 -peers peers.txt \
//	    -anycast 0.85,0.95 -wait 10s
//
// peers.txt:
//
//	10.0.0.5:4000 0.82
//	10.0.0.6:4000 0.31
//	10.0.0.7:4000 0.95
//
// Architecture: DESIGN.md §11 (live runtime).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"avmem"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "avmemnode:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("avmemnode", flag.ContinueOnError)
	listen := fs.String("listen", "", "host:port to listen on (required)")
	peersPath := fs.String("peers", "", "crawler dump: one 'host:port availability' per line (required)")
	epsilon := fs.Float64("epsilon", 0.1, "horizontal sliver half-width")
	c1 := fs.Float64("c1", 3, "vertical sliver constant")
	c2 := fs.Float64("c2", 3, "horizontal sliver constant")
	cushion := fs.Float64("cushion", 0.1, "verification cushion")
	period := fs.Duration("period", time.Minute, "discovery period")
	refresh := fs.Duration("refresh", 20*time.Minute, "refresh period")
	anycast := fs.String("anycast", "", "after -wait, anycast to range 'lo,hi' and print the outcome")
	wait := fs.Duration("wait", 5*time.Second, "discovery time before -anycast fires")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *listen == "" || *peersPath == "" {
		return fmt.Errorf("-listen and -peers are required")
	}

	peers, monitor, err := loadPeers(*peersPath)
	if err != nil {
		return err
	}
	self := avmem.NodeID(*listen)
	if _, ok := monitor[self]; !ok {
		return fmt.Errorf("peers file does not list this node (%s); add it with its availability", self)
	}

	// Predicate inputs, exactly as the paper distributes them: the
	// availability PDF and N* come from the crawler dump.
	samples := make([]float64, 0, len(monitor))
	nStar := 0.0
	for _, av := range monitor {
		samples = append(samples, av)
		nStar += av // expected online population
	}
	pdf, err := avmem.PDFFromSamples(samples)
	if err != nil {
		return err
	}
	pred, err := avmem.NewPaperPredicate(*epsilon, *c1, *c2, nStar, pdf)
	if err != nil {
		return err
	}

	tr := avmem.NewTCPTransport(2*time.Second, 5*time.Second)
	defer tr.Close()
	node, err := avmem.NewNode(avmem.NodeConfig{
		Self:           self,
		Predicate:      pred,
		Monitor:        monitor,
		Peers:          avmem.PeerFunc(func(s avmem.NodeID) []avmem.NodeID { return without(peers, s) }),
		Transport:      tr,
		ProtocolPeriod: *period,
		RefreshPeriod:  *refresh,
		VerifyInbound:  true,
		Cushion:        *cushion,
	})
	if err != nil {
		return err
	}
	if err := node.Start(); err != nil {
		return err
	}
	defer node.Stop()
	fmt.Printf("avmemnode %s up: %d known peers, N*=%.1f\n", self, len(peers)-1, nStar)

	if *anycast != "" {
		lo, hi, err := parseRange(*anycast)
		if err != nil {
			return err
		}
		target, err := avmem.NewRange(lo, hi)
		if err != nil {
			return err
		}
		time.Sleep(*wait)
		hs, vs := node.SliverSizes()
		fmt.Printf("slivers after %v: HS=%d VS=%d\n", *wait, hs, vs)
		id, err := node.Anycast(target, avmem.DefaultAnycastOptions())
		if err != nil {
			return err
		}
		deadline := time.After(10 * time.Second)
		for {
			rec, ok := node.AnycastResult(id)
			if ok && rec.Outcome != avmem.OutcomePending {
				fmt.Printf("anycast %s: %v after %d hops in %v\n",
					target, rec.Outcome, rec.Hops, rec.Latency.Round(time.Millisecond))
				return nil
			}
			select {
			case <-deadline:
				fmt.Printf("anycast %s: still pending\n", target)
				return nil
			case <-time.After(50 * time.Millisecond):
			}
		}
	}

	// Daemon mode: run until interrupted.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
	return nil
}

// loadPeers parses the crawler dump.
func loadPeers(path string) ([]avmem.NodeID, avmem.StaticMonitor, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	peers := make([]avmem.NodeID, 0, 64)
	monitor := avmem.StaticMonitor{}
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		addr, avText, ok := strings.Cut(text, " ")
		if !ok {
			return nil, nil, fmt.Errorf("%s:%d: want 'host:port availability'", path, line)
		}
		av, err := strconv.ParseFloat(strings.TrimSpace(avText), 64)
		if err != nil || av < 0 || av > 1 {
			return nil, nil, fmt.Errorf("%s:%d: bad availability %q", path, line, avText)
		}
		id := avmem.NodeID(addr)
		peers = append(peers, id)
		monitor[id] = av
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	if len(peers) == 0 {
		return nil, nil, fmt.Errorf("%s: no peers", path)
	}
	return peers, monitor, nil
}

func without(peers []avmem.NodeID, self avmem.NodeID) []avmem.NodeID {
	out := make([]avmem.NodeID, 0, len(peers))
	for _, p := range peers {
		if p != self {
			out = append(out, p)
		}
	}
	return out
}

func parseRange(s string) (lo, hi float64, err error) {
	loText, hiText, ok := strings.Cut(s, ",")
	if !ok {
		return 0, 0, fmt.Errorf("want -anycast lo,hi, got %q", s)
	}
	lo, err = strconv.ParseFloat(strings.TrimSpace(loText), 64)
	if err != nil {
		return 0, 0, err
	}
	hi, err = strconv.ParseFloat(strings.TrimSpace(hiText), 64)
	if err != nil {
		return 0, 0, err
	}
	return lo, hi, nil
}
