package main

import (
	"os"
	"path/filepath"
	"testing"

	"avmem"
)

func writePeersFile(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "peers.txt")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadPeers(t *testing.T) {
	path := writePeersFile(t, `# comment
127.0.0.1:4001 0.82

127.0.0.1:4002 0.31
`)
	peers, monitor, err := loadPeers(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != 2 {
		t.Fatalf("peers = %v", peers)
	}
	if av, ok := monitor["127.0.0.1:4001"]; !ok || av != 0.82 {
		t.Errorf("monitor entry = (%v,%v)", av, ok)
	}
}

func TestLoadPeersErrors(t *testing.T) {
	cases := []struct {
		name    string
		content string
	}{
		{"no space", "127.0.0.1:4001\n"},
		{"bad availability", "127.0.0.1:4001 nine\n"},
		{"availability out of range", "127.0.0.1:4001 1.4\n"},
		{"empty", "# nothing\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := writePeersFile(t, tc.content)
			if _, _, err := loadPeers(path); err == nil {
				t.Error("want error, got nil")
			}
		})
	}
	if _, _, err := loadPeers("/does/not/exist"); err == nil {
		t.Error("want error for missing file")
	}
}

func TestParseRange(t *testing.T) {
	lo, hi, err := parseRange("0.85,0.95")
	if err != nil || lo != 0.85 || hi != 0.95 {
		t.Errorf("parseRange = (%v,%v,%v)", lo, hi, err)
	}
	if _, _, err := parseRange("0.85"); err == nil {
		t.Error("want error for missing comma")
	}
	if _, _, err := parseRange("x,0.5"); err == nil {
		t.Error("want error for bad lo")
	}
	if _, _, err := parseRange("0.5,y"); err == nil {
		t.Error("want error for bad hi")
	}
}

func TestWithout(t *testing.T) {
	peers := []avmem.NodeID{"a", "b", "c"}
	got := without(peers, "b")
	if len(got) != 2 || got[0] != "a" || got[1] != "c" {
		t.Errorf("without = %v", got)
	}
	if got := without(peers, "zzz"); len(got) != 3 {
		t.Errorf("without(absent) = %v", got)
	}
}

func TestRunValidation(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Error("want error for missing -listen/-peers")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("want error for unknown flag")
	}
	path := writePeersFile(t, "127.0.0.1:4001 0.5\n")
	// Listening node not present in the peers file.
	if err := run([]string{"-listen", "127.0.0.1:4999", "-peers", path}); err == nil {
		t.Error("want error when self is not in the peers file")
	}
}

func TestRunAnycastEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("binds TCP ports")
	}
	peersContent := "127.0.0.1:39601 0.30\n127.0.0.1:39602 0.92\n"
	path := writePeersFile(t, peersContent)

	// Start the high-availability responder in the background.
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-listen", "127.0.0.1:39602", "-peers", path,
			"-period", "100ms",
			"-anycast", "0.85,0.95", "-wait", "1s",
		})
	}()

	// And the initiator in the foreground: it should discover the
	// responder and deliver the anycast to it.
	err := run([]string{
		"-listen", "127.0.0.1:39601", "-peers", path,
		"-period", "100ms",
		"-anycast", "0.85,0.95", "-wait", "1500ms",
	})
	if err != nil {
		t.Fatalf("initiator: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("responder: %v", err)
	}
}
