package main

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	rtrace "runtime/trace"
)

// startProfiles turns on the requested profilers and returns the
// teardown that flushes them; any empty path is skipped. The CPU
// profile and execution trace record the whole run; the heap profile is
// a single end-of-run snapshot taken after a forced GC, which is the
// view that matters for a simulator whose live set is the world itself.
func startProfiles(cpu, mem, trace string) (stop func(), err error) {
	var stops []func()
	fail := func(err error) (func(), error) {
		for _, s := range stops {
			s()
		}
		return nil, err
	}
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			return fail(fmt.Errorf("cpuprofile: %w", err))
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fail(fmt.Errorf("cpuprofile: %w", err))
		}
		stops = append(stops, func() {
			pprof.StopCPUProfile()
			f.Close()
		})
	}
	if trace != "" {
		f, err := os.Create(trace)
		if err != nil {
			return fail(fmt.Errorf("trace: %w", err))
		}
		if err := rtrace.Start(f); err != nil {
			f.Close()
			return fail(fmt.Errorf("trace: %w", err))
		}
		stops = append(stops, func() {
			rtrace.Stop()
			f.Close()
		})
	}
	if mem != "" {
		stops = append(stops, func() {
			f, err := os.Create(mem)
			if err != nil {
				fmt.Fprintln(os.Stderr, "avmemsim: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "avmemsim: memprofile:", err)
			}
		})
	}
	return func() {
		// Unwind in reverse so the CPU profile covers the trace stop.
		for i := len(stops) - 1; i >= 0; i-- {
			stops[i]()
		}
	}, nil
}
