package main

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	rtrace "runtime/trace"
)

// startProfiles turns on the requested profilers and returns the
// teardown that flushes them; any empty path is skipped. The CPU
// profile and execution trace record the whole run; the heap profile is
// a single end-of-run snapshot taken after a forced GC, which is the
// view that matters for a simulator whose live set is the world itself.
// The mutex and block profiles cover the whole run (sampling turns on
// at start and off at teardown) — the contention view that matters for
// the thread-parallel engine's shared caches and window barriers.
func startProfiles(cpu, mem, trace, mutex, block string) (stop func(), err error) {
	var stops []func()
	fail := func(err error) (func(), error) {
		for _, s := range stops {
			s()
		}
		return nil, err
	}
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			return fail(fmt.Errorf("cpuprofile: %w", err))
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fail(fmt.Errorf("cpuprofile: %w", err))
		}
		stops = append(stops, func() {
			pprof.StopCPUProfile()
			f.Close()
		})
	}
	if trace != "" {
		f, err := os.Create(trace)
		if err != nil {
			return fail(fmt.Errorf("trace: %w", err))
		}
		if err := rtrace.Start(f); err != nil {
			f.Close()
			return fail(fmt.Errorf("trace: %w", err))
		}
		stops = append(stops, func() {
			rtrace.Stop()
			f.Close()
		})
	}
	if mutex != "" {
		runtime.SetMutexProfileFraction(5)
		stops = append(stops, func() {
			defer runtime.SetMutexProfileFraction(0)
			writeLookupProfile(mutex, "mutex")
		})
	}
	if block != "" {
		runtime.SetBlockProfileRate(10_000) // one sample per 10µs blocked
		stops = append(stops, func() {
			defer runtime.SetBlockProfileRate(0)
			writeLookupProfile(block, "block")
		})
	}
	if mem != "" {
		stops = append(stops, func() {
			f, err := os.Create(mem)
			if err != nil {
				fmt.Fprintln(os.Stderr, "avmemsim: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "avmemsim: memprofile:", err)
			}
		})
	}
	return func() {
		// Unwind in reverse so the CPU profile covers the trace stop.
		for i := len(stops) - 1; i >= 0; i-- {
			stops[i]()
		}
	}, nil
}

// writeLookupProfile writes the named runtime profile (mutex, block) to
// path, reporting failures without aborting the teardown chain.
func writeLookupProfile(path, name string) {
	p := pprof.Lookup(name)
	if p == nil {
		fmt.Fprintf(os.Stderr, "avmemsim: %sprofile: no such profile\n", name)
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "avmemsim: %sprofile: %v\n", name, err)
		return
	}
	defer f.Close()
	if err := p.WriteTo(f, 0); err != nil {
		fmt.Fprintf(os.Stderr, "avmemsim: %sprofile: %v\n", name, err)
	}
}
