package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"avmem/internal/fuzzgen"
)

// fuzzScenarios runs a metamorphic fuzz campaign: generate random valid
// scenarios from consecutive seeds, run each through every invariant
// oracle (determinism, shard/obs/thread invariance, cross-engine shape,
// semantic bounds), and minimize any failure into the corpus directory.
// Exits non-zero when any oracle tripped, so CI can gate on it.
func fuzzScenarios(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("avmemsim fuzz", flag.ContinueOnError)
	budget := fs.Duration("budget", 60*time.Second, "wall-clock generation budget")
	seed := fs.Int64("seed", 1, "first generator seed; scenario i uses seed+i")
	maxN := fs.Int("max", 0, "stop after this many scenarios (0 = budget-only)")
	minN := fs.Int("min", 25, "keep going past the budget until this many scenarios ran")
	corpus := fs.String("corpus", "scenarios/fuzz-corpus", "directory for minimized failing specs ('' = don't write)")
	quiet := fs.Bool("q", false, "suppress per-seed progress lines")
	maxHosts := fs.Int("max-hosts", 0, "cap generated fleet sizes (0 = generator default of 2000)")
	specTimeout := fs.Duration("spec-timeout", 2*time.Minute, "per-scenario oracle deadline; exceeding it aborts the campaign as a hang")
	shrinkEvals := fs.Int("shrink-evals", 60, "oracle evaluations the shrinker may spend per failing seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("usage: avmemsim fuzz [-budget d] [-seed N] [-max N] [-min N] [-corpus dir] [-max-hosts N] [-spec-timeout d] [-shrink-evals N] [-q]")
	}
	opts := fuzzgen.Options{
		Budget:      *budget,
		Seed:        *seed,
		Max:         *maxN,
		Min:         *minN,
		SpecTimeout: *specTimeout,
		ShrinkEvals: *shrinkEvals,
		CorpusDir:   *corpus,
		Gen:         fuzzgen.GenOptions{MaxHosts: *maxHosts},
	}
	if !*quiet {
		opts.Log = os.Stderr
	}
	rep, err := fuzzgen.Campaign(opts)
	if rep != nil {
		rep.WriteReport(out)
	}
	if err != nil {
		return err
	}
	if rep.Failed() {
		return fmt.Errorf("fuzz: %d seed(s) violated invariant oracles", len(rep.Findings))
	}
	return nil
}
