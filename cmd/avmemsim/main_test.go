package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"avmem/internal/trace"
)

// writeTinyTrace archives a small synthetic trace for CLI tests.
func writeTinyTrace(t *testing.T) string {
	t.Helper()
	gen := trace.DefaultGenConfig(5)
	gen.Hosts = 150
	gen.Epochs = 120 // ~1.7 days
	tr, err := trace.Generate(gen)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "tiny.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := trace.Write(f, tr); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunFig2FromTraceFile(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a full world")
	}
	path := writeTinyTrace(t)
	var out strings.Builder
	start := time.Now()
	err := run([]string{"-fig", "2", "-quick", "-trace", path, "-seed", "3"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "Figure 2(a)") || !strings.Contains(text, "Figure 2(b,c)") {
		t.Errorf("missing figure sections:\n%s", text)
	}
	if !strings.Contains(text, "150 hosts") {
		t.Errorf("trace not loaded from file:\n%s", text)
	}
	t.Logf("fig 2 regeneration took %v", time.Since(start))
}

func TestRunFig5(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a full world")
	}
	path := writeTinyTrace(t)
	var out strings.Builder
	if err := run([]string{"-fig", "5", "-quick", "-trace", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "cushion=0") {
		t.Errorf("missing attack table:\n%s", out.String())
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-bogus"}, &out); err == nil {
		t.Error("want error for unknown flag")
	}
}

func TestRunRejectsMissingTrace(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-fig", "2", "-trace", "/does/not/exist"}, &out); err == nil {
		t.Error("want error for missing trace file")
	}
}

func TestFmtNaN(t *testing.T) {
	if got := fmtNaN(0.5); got != "0.500" {
		t.Errorf("fmtNaN(0.5) = %q", got)
	}
	nan := 0.0
	nan /= nan
	if got := fmtNaN(nan); got != "-" {
		t.Errorf("fmtNaN(NaN) = %q", got)
	}
}

func TestFracHelper(t *testing.T) {
	if frac(1, 2) != 0.5 || frac(1, 0) != 0 {
		t.Error("frac helper wrong")
	}
}

// writeScenario drops a scenario file into a temp dir.
func writeScenario(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "scenario.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const tinyScenario = `{
  "name": "cli-tiny",
  "seed": 1,
  "fleet": {"hosts": 120, "days": 1, "protocol_period": "2m"},
  "warmup": "2h",
  "events": [
    {"at": "0s", "churn_burst": {"fraction": 0.3, "duration": "20m"}},
    {"at": "2m", "anycast_batch": {"count": 8, "band_lo": 0, "band_hi": 1.01, "target_lo": 0.5, "target_hi": 1}}
  ],
  "assertions": [{"metric": "anycast_delivery_rate", "min": 0.5}]
}`

func TestRunScenarioEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a full world")
	}
	path := writeScenario(t, tinyScenario)
	var out strings.Builder
	if err := run([]string{"run", path}, &out); err != nil {
		t.Fatalf("scenario run failed: %v\n%s", err, out.String())
	}
	text := out.String()
	for _, want := range []string{"churn burst", "anycast batch", "PASS"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}

func TestRunScenarioAssertionFailureIsError(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a full world")
	}
	body := strings.Replace(tinyScenario, `"min": 0.5`, `"min": 1.5`, 1)
	path := writeScenario(t, body)
	var out strings.Builder
	err := run([]string{"run", "-q", path}, &out)
	if err == nil {
		t.Fatalf("failed assertion did not error:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "FAIL") {
		t.Errorf("report missing FAIL line:\n%s", out.String())
	}
}

func TestValidateScenario(t *testing.T) {
	path := writeScenario(t, tinyScenario)
	var out strings.Builder
	if err := run([]string{"validate", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "cli-tiny") {
		t.Errorf("validate output missing name:\n%s", out.String())
	}
}

func TestValidateRejectsMalformedScenario(t *testing.T) {
	cases := map[string]string{
		"unknown field":  `{"name": "x", "bogus": true, "events": [{"at": "0s", "attack": {"cushion": 0}}]}`,
		"no events":      `{"name": "x"}`,
		"unknown metric": `{"name": "x", "events": [{"at": "0s", "attack": {"cushion": 0}}], "assertions": [{"metric": "vibes", "min": 1}]}`,
	}
	for name, body := range cases {
		t.Run(name, func(t *testing.T) {
			path := writeScenario(t, body)
			var out strings.Builder
			if err := run([]string{"validate", path}, &out); err == nil {
				t.Error("malformed scenario validated")
			}
		})
	}
	var out strings.Builder
	if err := run([]string{"validate", "/does/not/exist.json"}, &out); err == nil {
		t.Error("missing scenario file validated")
	}
}

// TestCheckedInScenariosValidate guards the example scenario files
// against spec drift.
func TestCheckedInScenariosValidate(t *testing.T) {
	dir := filepath.Join("..", "..", "scenarios")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		found++
		path := filepath.Join(dir, e.Name())
		t.Run(e.Name(), func(t *testing.T) {
			var out strings.Builder
			if err := run([]string{"validate", path}, &out); err != nil {
				t.Errorf("checked-in scenario invalid: %v", err)
			}
		})
	}
	if found < 3 {
		t.Errorf("expected at least 3 checked-in scenarios, found %d", found)
	}
}

// TestValidateReportsAllErrors: the validate subcommand collects every
// spec problem — each with its key path and source line — and exits
// non-zero with a summary count, instead of stopping at the first.
func TestValidateReportsAllErrors(t *testing.T) {
	body := `{
  "name": "",
  "fleet": {
    "hosts": 4
  },
  "adversaries": {
    "fraction": 0.9,
    "behaviors": ["psychic"]
  },
  "events": [
    {
      "at": "0s",
      "churn_burst": { "fraction": 2, "duration": "5m" }
    }
  ],
  "assertions": [
    { "metric": "vibes", "min": 1 }
  ]
}`
	path := writeScenario(t, body)
	var out strings.Builder
	err := run([]string{"validate", path}, &out)
	if err == nil {
		t.Fatal("invalid scenario validated")
	}
	if !strings.Contains(err.Error(), "6 error(s)") {
		t.Errorf("summary %q does not count all 6 errors", err.Error())
	}
	got := out.String()
	for _, want := range []string{
		"line 2: name:",
		"line 4: fleet.hosts:",
		"line 7: adversaries.fraction:",
		`line 8: adversaries.behaviors[0]: unknown behavior "psychic"`,
		"line 13: events[0].churn_burst.fraction:",
		"line 17: assertions[0].metric:",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("validate output missing %q:\n%s", want, got)
		}
	}
}

// TestValidateMultipleFiles: several files in one invocation, valid
// ones reported as such and the bad one failing the run.
func TestValidateMultipleFiles(t *testing.T) {
	good := writeScenario(t, tinyScenario)
	bad := writeScenario(t, `{"name": "x"}`)
	var out strings.Builder
	if err := run([]string{"validate", good, bad}, &out); err == nil {
		t.Fatal("bad file in the batch validated")
	}
	if !strings.Contains(out.String(), "cli-tiny") {
		t.Errorf("valid file not reported:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "events") {
		t.Errorf("bad file's problem not reported:\n%s", out.String())
	}
}
