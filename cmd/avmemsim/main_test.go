package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"avmem/internal/trace"
)

// writeTinyTrace archives a small synthetic trace for CLI tests.
func writeTinyTrace(t *testing.T) string {
	t.Helper()
	gen := trace.DefaultGenConfig(5)
	gen.Hosts = 150
	gen.Epochs = 120 // ~1.7 days
	tr, err := trace.Generate(gen)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "tiny.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := trace.Write(f, tr); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunFig2FromTraceFile(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a full world")
	}
	path := writeTinyTrace(t)
	var out strings.Builder
	start := time.Now()
	err := run([]string{"-fig", "2", "-quick", "-trace", path, "-seed", "3"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "Figure 2(a)") || !strings.Contains(text, "Figure 2(b,c)") {
		t.Errorf("missing figure sections:\n%s", text)
	}
	if !strings.Contains(text, "150 hosts") {
		t.Errorf("trace not loaded from file:\n%s", text)
	}
	t.Logf("fig 2 regeneration took %v", time.Since(start))
}

func TestRunFig5(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a full world")
	}
	path := writeTinyTrace(t)
	var out strings.Builder
	if err := run([]string{"-fig", "5", "-quick", "-trace", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "cushion=0") {
		t.Errorf("missing attack table:\n%s", out.String())
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-bogus"}, &out); err == nil {
		t.Error("want error for unknown flag")
	}
}

func TestRunRejectsMissingTrace(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-fig", "2", "-trace", "/does/not/exist"}, &out); err == nil {
		t.Error("want error for missing trace file")
	}
}

func TestFmtNaN(t *testing.T) {
	if got := fmtNaN(0.5); got != "0.500" {
		t.Errorf("fmtNaN(0.5) = %q", got)
	}
	nan := 0.0
	nan /= nan
	if got := fmtNaN(nan); got != "-" {
		t.Errorf("fmtNaN(NaN) = %q", got)
	}
}

func TestFracHelper(t *testing.T) {
	if frac(1, 2) != 0.5 || frac(1, 0) != 0 {
		t.Error("frac helper wrong")
	}
}
