package main

import (
	"fmt"
	"io"
	"os"
	"time"

	"avmem/internal/obs"
)

// obsFlags is the observability flag set of `avmemsim run`: the live
// telemetry surface, the end-of-run metrics dump, the causal op trace
// exports, and the periodic progress line. All of it is
// determinism-neutral — the scenario report on stdout is byte-identical
// whether or not any of these are set (pinned by
// internal/scenario/obs_test.go); telemetry goes to its own sinks
// (HTTP, files, stderr).
type obsFlags struct {
	metricsAddr string
	metricsOut  string
	metricsHold time.Duration
	traceOps    string
	traceJSONL  string
	progress    bool
}

// enabled reports whether any observability feature was requested.
func (f obsFlags) enabled() bool {
	return f.metricsAddr != "" || f.metricsOut != "" || f.traceOps != "" ||
		f.traceJSONL != "" || f.progress
}

// obsSetup is the live observability state of one `avmemsim run`.
type obsSetup struct {
	flags  obsFlags
	reg    *obs.Registry
	tracer *obs.Tracer
	srv    *obs.Server
	stop   chan struct{}
	done   chan struct{}
	errw   io.Writer
}

// startObs builds the registry/tracer, binds the telemetry listener,
// and starts the progress ticker. Returns nil when no observability
// flag is set — the zero-cost path.
func startObs(f obsFlags, errw io.Writer) (*obsSetup, error) {
	if !f.enabled() {
		return nil, nil
	}
	s := &obsSetup{flags: f, reg: obs.NewRegistry(), errw: errw}
	if f.traceOps != "" || f.traceJSONL != "" {
		s.tracer = obs.NewTracer(0)
	}
	if f.metricsAddr != "" {
		srv, err := obs.Serve(f.metricsAddr, s.reg)
		if err != nil {
			return nil, fmt.Errorf("-metrics-addr %s: %w", f.metricsAddr, err)
		}
		s.srv = srv
		fmt.Fprintf(errw, "telemetry: serving /metrics /healthz /debug/pprof on http://%s\n", srv.Addr)
	}
	if f.progress {
		s.stop = make(chan struct{})
		s.done = make(chan struct{})
		go s.progressLoop()
	}
	return s, nil
}

// progressLoop prints one stderr line per second with virtual time,
// total events, and the wall-clock event rate. It only reads atomic
// snapshots from the registry — the engine never notices it running.
func (s *obsSetup) progressLoop() {
	defer close(s.done)
	events := s.reg.Counter("sim_events_total")
	vtime := s.reg.Gauge("sim_virtual_time_seconds")
	tick := time.NewTicker(time.Second)
	defer tick.Stop()
	last := int64(0)
	lastWall := time.Now()
	line := func() {
		n := events.Value()
		now := time.Now()
		rate := float64(n-last) / now.Sub(lastWall).Seconds()
		last, lastWall = n, now
		vt := time.Duration(vtime.Value() * float64(time.Second)).Round(time.Second)
		fmt.Fprintf(s.errw, "progress: vt=%v events=%d (%.0f ev/s)\n", vt, n, rate)
	}
	for {
		select {
		case <-s.stop:
			// Runs shorter than one tick still get a (final) line.
			line()
			return
		case <-tick.C:
			line()
		}
	}
}

// finish flushes every requested sink: stops the progress ticker,
// honors -metrics-hold (the listener keeps serving the final counters
// so a scraper can collect them), writes the trace exports and the
// metrics dump, and shuts the listener down. Safe on a nil receiver.
func (s *obsSetup) finish() error {
	if s == nil {
		return nil
	}
	if s.stop != nil {
		close(s.stop)
		<-s.done
	}
	if s.srv != nil && s.flags.metricsHold > 0 {
		fmt.Fprintf(s.errw, "telemetry: holding /metrics on http://%s for %v\n", s.srv.Addr, s.flags.metricsHold)
		time.Sleep(s.flags.metricsHold)
	}
	var firstErr error
	if s.srv != nil {
		if err := s.srv.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if s.flags.traceOps != "" {
		if err := writeFileWith(s.flags.traceOps, s.tracer.WriteChromeTrace); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if s.flags.traceJSONL != "" {
		if err := writeFileWith(s.flags.traceJSONL, s.tracer.WriteJSONL); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if d := s.tracer.Dropped(); d > 0 {
		fmt.Fprintf(s.errw, "telemetry: op-trace ring dropped %d oldest spans (raise obs.DefaultTraceCap to keep more)\n", d)
	}
	if s.flags.metricsOut != "" {
		if s.flags.metricsOut == "-" {
			if err := s.reg.WritePrometheus(s.errw); err != nil && firstErr == nil {
				firstErr = err
			}
		} else if err := writeFileWith(s.flags.metricsOut, s.reg.WritePrometheus); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// writeFileWith creates path and streams fn into it.
func writeFileWith(path string, fn func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// checkTrace implements `avmemsim tracecheck`: the minimal Chrome
// trace-event schema gate CI runs over emitted op traces.
func checkTrace(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: avmemsim tracecheck <trace.json> [more.json ...]")
	}
	for _, path := range args {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		n, err := obs.ValidateChromeTrace(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("tracecheck %s: %w", path, err)
		}
		fmt.Fprintf(out, "trace %q valid: %d event(s)\n", path, n)
	}
	return nil
}
