// Command avmemsim drives trace-driven AVMEM simulations: it
// regenerates the figures of the paper's evaluation (Middleware 2007,
// §4) and executes declarative scenario files (churn bursts, attack
// probes, monitor degradation, workload batches, assertions).
//
// Usage:
//
//	avmemsim -fig all                      # every figure, full scale
//	avmemsim -fig 9 -seed 7                # one figure
//	avmemsim -fig 2,5,11 -quick            # scaled-down quick pass
//	avmemsim -trace overnet.trace -fig 2   # use an archived trace
//	avmemsim run scenarios/churn-storm.json       # execute a scenario
//	avmemsim run -backend memnet scenarios/churn-storm.json
//	                                              # same scenario on the live runtime
//	avmemsim run -seeds 8 -parallel 4 scenarios/churn-storm.json
//	                                              # multi-seed sweep, 4 worlds at once
//	avmemsim run -metrics-addr :9090 -progress scenarios/mixed-workload.json
//	                                              # watch it live: /metrics, /healthz,
//	                                              # /debug/pprof + stderr progress line
//	avmemsim run -trace-ops out.trace.json scenarios/mixed-workload.json
//	                                              # causal op trace for Perfetto
//	avmemsim tracecheck out.trace.json            # schema-check an emitted trace
//	avmemsim validate scenarios/churn-storm.json  # check a scenario file
//	avmemsim validate -dir scenarios              # check every *.json in a tree
//	avmemsim fuzz -budget 60s -seed 1             # metamorphic fuzz campaign:
//	                                              # random worlds through every
//	                                              # invariant oracle, failures
//	                                              # minimized into scenarios/fuzz-corpus/
//
// Full scale means the paper's setting: a 1442-host, 7-day Overnet-like
// churn trace, 24-hour warmup, 5 runs × 50 messages per point.
// `avmemsim run` exits non-zero when a scenario assertion fails; see
// internal/scenario for the spec format and scenarios/ for examples —
// scenario events cover the whole operation catalogue: anycast and
// multicast batches, range-casts, in-overlay aggregations, churn
// bursts, attack probes, monitor-noise ramps, and adversary onsets.
//
// Architecture: DESIGN.md §9 (deployment engines and the scenario
// layer).
package main

import (
	"flag"
	"fmt"
	"io"
	iofs "io/fs"
	"math"
	"os"
	"path/filepath"
	"strings"
	"time"

	"avmem/internal/exp"
	"avmem/internal/scenario"
	"avmem/internal/stats"
	"avmem/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "avmemsim:", err)
		os.Exit(1)
	}
}

// runScenario executes a scenario file and renders its report. A failed
// assertion surfaces as an error so the process exits non-zero.
// With -seeds N > 1 the scenario is swept over N consecutive seeds
// (spec.Seed, spec.Seed+1, …) with up to -parallel worlds in flight and
// a mean/min/max aggregate report; the aggregate is identical for every
// -parallel value, including 1 (determinism per world, parallelism
// across worlds).
func runScenario(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("avmemsim run", flag.ContinueOnError)
	quiet := fs.Bool("q", false, "suppress progress lines")
	seeds := fs.Int("seeds", 1, "number of consecutive seeds to sweep, starting at the spec's seed")
	parallel := fs.Int("parallel", 0, "worlds in flight at once for a multi-seed sweep (0 = GOMAXPROCS)")
	backend := fs.String("backend", scenario.BackendSim,
		"execution engine: 'sim' (virtual-time simulator) or 'memnet' (real nodes on a deterministic in-process network)")
	shards := fs.Int("shards", 0, "event-queue shards for the sim backend (0/1 = single heap; output is bit-identical for any value)")
	shardThreads := fs.Int("shard-threads", 0,
		"worker threads draining the shard heaps inside conservative lookahead windows (0/1 = serial; needs -shards > 1; output is reproducible per (spec, shards) but ordered differently than serial — see DESIGN.md §14)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write an end-of-run heap profile to this file")
	tracefile := fs.String("trace", "", "write a runtime execution trace to this file")
	mutexprofile := fs.String("mutexprofile", "", "write a mutex-contention profile to this file")
	blockprofile := fs.String("blockprofile", "", "write a goroutine-blocking profile to this file")
	var of obsFlags
	fs.StringVar(&of.metricsAddr, "metrics-addr", "",
		"serve /metrics (Prometheus text), /healthz, and /debug/pprof on this address for the duration of the run (e.g. :9090)")
	fs.StringVar(&of.metricsOut, "metrics-out", "",
		"write the end-of-run metrics dump (Prometheus text, fully sorted) to this file ('-' = stderr)")
	fs.DurationVar(&of.metricsHold, "metrics-hold", 0,
		"keep serving -metrics-addr this long after the run completes, so scrapers can collect the final counters")
	fs.StringVar(&of.traceOps, "trace-ops", "",
		"write the causal op trace in Chrome trace-event format to this file (load in Perfetto; virtual-time axis)")
	fs.StringVar(&of.traceJSONL, "trace-jsonl", "",
		"write the causal op trace as JSON Lines (one span per line) to this file")
	fs.BoolVar(&of.progress, "progress", false,
		"print a periodic stderr line with virtual time, events processed, and events/sec")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: avmemsim run [-q] [-backend sim|memnet] [-seeds N] [-parallel P] [-shards S] [-shard-threads T] [-metrics-addr a] [-metrics-out f] [-metrics-hold d] [-trace-ops f] [-trace-jsonl f] [-progress] [-cpuprofile f] [-memprofile f] [-mutexprofile f] [-blockprofile f] [-trace f] <scenario.json>")
	}
	stopProf, err := startProfiles(*cpuprofile, *memprofile, *tracefile, *mutexprofile, *blockprofile)
	if err != nil {
		return err
	}
	defer stopProf()
	if *seeds < 1 {
		return fmt.Errorf("avmemsim run: -seeds must be >= 1, got %d", *seeds)
	}
	spec, err := scenario.LoadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	var log io.Writer = out
	if *quiet {
		log = nil
	}
	ob, err := startObs(of, os.Stderr)
	if err != nil {
		return err
	}
	opts := scenario.Options{Log: log, Backend: *backend, Shards: *shards, ShardThreads: *shardThreads}
	if ob != nil {
		// One registry/tracer serves the whole invocation; with
		// -seeds > 1 the counters aggregate across every world of the
		// sweep (instruments are atomic, so concurrent worlds are safe).
		opts.Metrics = ob.reg
		opts.OpTrace = ob.tracer
	}
	if *seeds > 1 {
		multi, err := scenario.RunMany(spec, scenario.SeedRange(spec.Seed, *seeds), *parallel, opts)
		if err != nil {
			ob.finish()
			return err
		}
		multi.WriteReport(out)
		if err := ob.finish(); err != nil {
			return err
		}
		if !multi.Passed() {
			return fmt.Errorf("scenario %q: %d assertion failure(s) across %d seeds",
				multi.Name, len(multi.Failures), *seeds)
		}
		return nil
	}
	res, err := scenario.Run(spec, opts)
	if err != nil {
		ob.finish()
		return err
	}
	res.WriteReport(out)
	if err := ob.finish(); err != nil {
		return err
	}
	if !res.Passed() {
		return fmt.Errorf("scenario %q: %d assertion(s) failed", res.Name, len(res.Failures))
	}
	return nil
}

// validateScenario checks scenario files without building the world.
// Unlike `run`, it reports every spec error at once — each with its key
// path and source line — and exits non-zero with a summary count. With
// -dir, every *.json under the directory is validated (the fuzz corpus
// and the checked-in scenario library in one sweep).
func validateScenario(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("avmemsim validate", flag.ContinueOnError)
	dir := fs.String("dir", "", "validate every *.json under this directory (recursively), in addition to any positional files")
	if err := fs.Parse(args); err != nil {
		return err
	}
	paths := fs.Args()
	if *dir != "" {
		found, err := scenarioFiles(*dir)
		if err != nil {
			return err
		}
		if len(found) == 0 {
			return fmt.Errorf("validate: no *.json files under %s", *dir)
		}
		paths = append(paths, found...)
	}
	if len(paths) == 0 {
		return fmt.Errorf("usage: avmemsim validate [-dir directory] [scenario.json ...]")
	}
	total, bad := 0, 0
	for _, path := range paths {
		spec, problems := scenario.LoadFileAll(path)
		if len(problems) == 0 {
			fmt.Fprintf(out, "scenario %q valid: %d event(s), %d assertion(s)\n",
				spec.Name, len(spec.Events), len(spec.Assertions))
			continue
		}
		total += len(problems)
		bad++
		for _, p := range problems {
			fmt.Fprintf(out, "%s: %s\n", path, p)
		}
	}
	if total > 0 {
		return fmt.Errorf("validate: %d error(s) in %d of %d file(s)", total, bad, len(paths))
	}
	return nil
}

// scenarioFiles walks dir and returns every *.json file under it in
// lexical order.
func scenarioFiles(dir string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(dir, func(path string, d iofs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(path, ".json") {
			out = append(out, path)
		}
		return nil
	})
	return out, err
}

type config struct {
	figs      map[string]bool
	seed      int64
	quick     bool
	tracePath string
	out       io.Writer
}

func run(args []string, out io.Writer) error {
	if len(args) > 0 {
		switch args[0] {
		case "run":
			return runScenario(args[1:], out)
		case "validate":
			return validateScenario(args[1:], out)
		case "tracecheck":
			return checkTrace(args[1:], out)
		case "fuzz":
			return fuzzScenarios(args[1:], out)
		}
	}
	fs := flag.NewFlagSet("avmemsim", flag.ContinueOnError)
	figFlag := fs.String("fig", "all", "comma-separated figure list (2..13) or 'all'")
	seed := fs.Int64("seed", 1, "simulation seed")
	quick := fs.Bool("quick", false, "scaled-down run (600 hosts, 8h warmup, 2x25 messages)")
	tracePath := fs.String("trace", "", "path to an avmem-trace file (default: synthesize Overnet-like)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	figs := map[string]bool{}
	if *figFlag == "all" {
		for _, f := range []string{"2", "3", "4", "5", "6", "7", "8", "9", "10", "11", "12", "13"} {
			figs[f] = true
		}
	} else {
		for _, f := range strings.Split(*figFlag, ",") {
			figs[strings.TrimSpace(f)] = true
		}
	}

	cfg := config{figs: figs, seed: *seed, quick: *quick, tracePath: *tracePath, out: out}
	return runFigures(cfg)
}

func (c config) printf(format string, args ...any) {
	fmt.Fprintf(c.out, format, args...)
}

func (c config) loadTrace() (*trace.Trace, error) {
	if c.tracePath != "" {
		f, err := os.Open(c.tracePath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return trace.Read(f)
	}
	gen := trace.DefaultGenConfig(c.seed)
	if c.quick {
		gen.Hosts = 600
		gen.Epochs = 504
	}
	return trace.Generate(gen)
}

func (c config) worldConfig(tr *trace.Trace) exp.WorldConfig {
	wc := exp.WorldConfig{Seed: c.seed, Trace: tr}
	if c.quick {
		wc.ProtocolPeriod = 2 * time.Minute
	}
	return wc
}

func (c config) warmup() time.Duration {
	if c.quick {
		return 8 * time.Hour
	}
	return 24 * time.Hour
}

func (c config) batch(spec *exp.AnycastSpec) {
	if c.quick {
		spec.Runs, spec.PerRun = 2, 25
	}
}

func (c config) mbatch(spec *exp.MulticastSpec) {
	if c.quick {
		spec.Runs, spec.PerRun = 2, 25
	}
}

func runFigures(c config) error {
	start := time.Now()
	tr, err := c.loadTrace()
	if err != nil {
		return err
	}
	c.printf("# AVMEM evaluation — seed %d, %d hosts × %d epochs, warmup %v%s\n\n",
		c.seed, tr.Hosts(), tr.Epochs(), c.warmup(), map[bool]string{true: " (quick)", false: ""}[c.quick])

	need := func(f string) bool { return c.figs[f] }

	// Figures 2–4 and 7–9, 11–13 share one default world.
	var w *exp.World
	needDefault := need("2") || need("3") || need("4") || need("5") ||
		need("7") || need("8") || need("9") || need("10") ||
		need("11") || need("12") || need("13")
	if needDefault {
		w, err = exp.NewWorld(c.worldConfig(tr))
		if err != nil {
			return err
		}
		w.Warmup(c.warmup())
		c.printf("world ready: N*=%.0f, online now=%d, mean degree=%.1f (%.1fs)\n\n",
			w.NStar, len(w.OnlineHosts()), w.MeanDegree(), time.Since(start).Seconds())
	}

	if need("2") {
		printFig2(c, w)
	}
	if need("3") {
		printFig3(c, w)
	}
	if need("4") {
		printFig4(c, w)
	}
	if need("5") {
		printFig5(c, w)
	}
	if need("6") {
		if err := printFig6(c, tr); err != nil {
			return err
		}
	}
	if need("7") {
		if err := printFig7(c, w); err != nil {
			return err
		}
	}
	if need("8") {
		if err := printFig8(c, w); err != nil {
			return err
		}
	}
	var fig9 []exp.AnycastResult
	if need("9") {
		fig9, err = printFig9(c, w)
		if err != nil {
			return err
		}
	}
	if need("10") {
		if err := printFig10(c, tr, fig9); err != nil {
			return err
		}
	}
	if need("11") || need("12") || need("13") {
		if err := printFig11to13(c, w); err != nil {
			return err
		}
	}
	c.printf("total wall time: %.1fs\n", time.Since(start).Seconds())
	return nil
}

func printFig2(c config, w *exp.World) {
	snap := exp.SnapshotOverlay(w)
	c.printf("== Figure 2(a): online-node availability distribution (%d online) ==\n", snap.OnlineCount)
	c.printf("%-12s %s\n", "avail", "nodes")
	for i, n := range snap.AvailHistogram {
		c.printf("%-12.2f %d\n", float64(i)*0.05, n)
	}
	c.printf("\n== Figure 2(b,c): median sliver sizes per availability bucket ==\n")
	c.printf("%-12s %-12s %s\n", "avail", "HS-median", "VS-median")
	for i := 0; i < 10; i++ {
		c.printf("%-12.1f %-12s %s\n", float64(i)*0.1, fmtNaN(snap.HSMedian[i]), fmtNaN(snap.VSMedian[i]))
	}
	c.printf("\n")
}

func printFig3(c config, w *exp.World) {
	hs := exp.ScanHorizontalScaling(w)
	c.printf("== Figure 3: HS size vs candidate count (sublinearity ratio %.2f; <1 is sublinear) ==\n",
		hs.SublinearityRatio())
	// Bucket candidates into ranges of 50 for a compact table.
	buckets := map[int][]float64{}
	for _, p := range hs.Points {
		buckets[int(p.X)/50] = append(buckets[int(p.X)/50], p.Y)
	}
	c.printf("%-22s %-10s %s\n", "candidates-in-band", "nodes", "mean-HS-size")
	for b := 0; b < 12; b++ {
		ys, ok := buckets[b]
		if !ok {
			continue
		}
		c.printf("%-22s %-10d %.1f\n", fmt.Sprintf("[%d,%d)", b*50, (b+1)*50), len(ys), stats.Mean(ys))
	}
	c.printf("\n")
}

func printFig4(c config, w *exp.World) {
	deg := exp.ScanVSInDegree(w)
	c.printf("== Figure 4: incoming VS references per availability range ==\n")
	c.printf("%-12s %-16s %s\n", "avail", "incoming-VS-links", "online-nodes")
	for i := 0; i < 10; i++ {
		c.printf("%-12.1f %-16.0f %d\n", float64(i)*0.1, deg.PerBucket[i], deg.Population[i])
	}
	c.printf("\n")
}

func printFig5(c config, w *exp.World) {
	c.printf("== Figure 5: flooding attack — fraction of non-neighbors accepting ==\n")
	c.printf("%-12s %-14s %s\n", "avail", "cushion=0", "cushion=0.1")
	r0 := exp.FloodingAttack(w, 0)
	r1 := exp.FloodingAttack(w, 0.1)
	for i := 0; i < 10; i++ {
		c.printf("%-12.1f %-14s %s\n", float64(i)*0.1, fmtNaN(r0.PerBucket[i]), fmtNaN(r1.PerBucket[i]))
	}
	c.printf("overall: cushion=0 %.3f, cushion=0.1 %.3f\n\n", r0.Overall, r1.Overall)
}

func printFig6(c config, tr *trace.Trace) error {
	// Figure 6 needs an imperfect monitor: bounded error plus 20-minute
	// staleness, the regime the paper attributes rejections to.
	wc := c.worldConfig(tr)
	wc.MonitorErr = 0.05
	wc.MonitorStaleness = 20 * time.Minute
	w, err := exp.NewWorld(wc)
	if err != nil {
		return err
	}
	w.Warmup(c.warmup())
	c.printf("== Figure 6: legitimate rejection rate (noisy monitor ±0.05, 20m staleness) ==\n")
	c.printf("%-12s %-14s %s\n", "avail", "cushion=0", "cushion=0.1")
	r0 := exp.LegitimateRejection(w, 0)
	r1 := exp.LegitimateRejection(w, 0.1)
	for i := 0; i < 10; i++ {
		c.printf("%-12.1f %-14s %s\n", float64(i)*0.1, fmtNaN(r0.PerBucket[i]), fmtNaN(r1.PerBucket[i]))
	}
	c.printf("overall: cushion=0 %.3f, cushion=0.1 %.3f\n\n", r0.Overall, r1.Overall)
	return nil
}

func printFig7(c config, w *exp.World) error {
	c.printf("== Figure 7: range anycast MID → [0.85,0.95], hops CDF ==\n")
	c.printf("%-16s %-10s %-9s %-9s %-8s %s\n", "variant", "delivered", "ttl-exp", "dropped", "hops:", "cdf(1..6)")
	for _, spec := range exp.Fig7Variants() {
		c.batch(&spec)
		res, err := exp.RunAnycasts(w, spec)
		if err != nil {
			return err
		}
		cdf := res.HopsCDF()
		row := make([]string, 0, 6)
		for h := 1; h < len(cdf); h++ {
			row = append(row, fmt.Sprintf("%.2f", cdf[h]))
		}
		c.printf("%-16s %-10.2f %-9.2f %-9.2f %-8s %s\n", res.Name, res.FractionDelivered(),
			res.FractionTTLExpired(), res.FractionRetryExpired(), "", strings.Join(row, " "))
	}
	c.printf("\n")
	return nil
}

func printFig8(c config, w *exp.World) error {
	c.printf("== Figure 8: range anycast HIGH → {[0.85,0.95],[0.44,0.54],[0.15,0.25]} ==\n")
	c.printf("%-36s %s\n", "variant→target", "fraction-delivered")
	for _, spec := range exp.Fig8Variants() {
		c.batch(&spec)
		res, err := exp.RunAnycasts(w, spec)
		if err != nil {
			return err
		}
		c.printf("%-36s %.2f\n", res.Name, res.FractionDelivered())
	}
	c.printf("\n")
	return nil
}

func printFig9(c config, w *exp.World) ([]exp.AnycastResult, error) {
	c.printf("== Figure 9: retried-greedy anycast HIGH → [0.15,0.25] (AVMEM overlay) ==\n")
	results, err := runRetrySweep(c, w)
	if err != nil {
		return nil, err
	}
	printRetryTable(c, results)
	return results, nil
}

func printFig10(c config, tr *trace.Trace, fig9 []exp.AnycastResult) error {
	// The baseline is a SCAMP/CYCLON-like random overlay; those systems
	// maintain O(log N) views, so the consistent random predicate is
	// sized to 2·ln(N*) expected neighbors.
	degree := 2 * math.Log(tr.MeanOnline())
	w, err := exp.NewRandomWorld(c.worldConfig(tr), degree)
	if err != nil {
		return err
	}
	w.Warmup(c.warmup())
	c.printf("== Figure 10: retried-greedy anycast HIGH → [0.15,0.25] (random overlay, degree ≈ %.0f) ==\n", degree)
	results, err := runRetrySweep(c, w)
	if err != nil {
		return err
	}
	printRetryTable(c, results)
	if len(fig9) == len(results) && len(fig9) > 0 {
		c.printf("AVMEM vs random delivered fraction at retry=8: %.2f vs %.2f\n\n",
			fig9[2].FractionDelivered(), results[2].FractionDelivered())
	}
	return nil
}

func runRetrySweep(c config, w *exp.World) ([]exp.AnycastResult, error) {
	out := make([]exp.AnycastResult, 0, 4)
	for _, spec := range exp.Fig9Specs() {
		c.batch(&spec)
		res, err := exp.RunAnycasts(w, spec)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

func printRetryTable(c config, results []exp.AnycastResult) {
	c.printf("%-10s %-11s %-13s %-15s %s\n", "retries", "delivered", "ttl-expired", "retry-expired", "avg-latency")
	for _, r := range results {
		c.printf("%-10s %-11.2f %-13.2f %-15.2f %v\n",
			strings.TrimPrefix(r.Name, "retry="), r.FractionDelivered(),
			r.FractionTTLExpired(), r.FractionRetryExpired(), r.MeanLatency().Round(time.Millisecond))
	}
	c.printf("\n")
}

func printFig11to13(c config, w *exp.World) error {
	c.printf("== Figures 11–13: multicast latency / spam / reliability ==\n")
	c.printf("%-26s %-9s %-14s %-12s %-12s %s\n",
		"scenario", "entered", "p50-latency", "max-latency", "mean-spam", "mean-reliability")
	for _, spec := range exp.Fig11Specs() {
		c.mbatch(&spec)
		res, err := exp.RunMulticasts(w, spec)
		if err != nil {
			return err
		}
		lat := make([]float64, len(res.WorstLatencies))
		for i, l := range res.WorstLatencies {
			lat[i] = float64(l.Milliseconds())
		}
		p50 := time.Duration(stats.Percentile(lat, 50)) * time.Millisecond
		c.printf("%-26s %-9.2f %-14v %-12v %-12.3f %.3f\n",
			res.Name, frac(res.Entered, res.Sent), p50,
			res.MaxWorstLatency().Round(time.Millisecond),
			res.MeanSpamRatio(), res.MeanReliability())
	}
	c.printf("\n")
	return nil
}

func frac(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

func fmtNaN(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%.3f", v)
}
