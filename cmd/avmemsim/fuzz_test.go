package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestFuzzSubcommandSmoke runs a minimal campaign through the CLI: two
// generated scenarios, every oracle, no corpus writes.
func TestFuzzSubcommandSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full scenario worlds")
	}
	var out strings.Builder
	err := run([]string{"fuzz", "-q", "-budget", "1ms", "-min", "2", "-max", "2",
		"-max-hosts", "60", "-corpus", ""}, &out)
	if err != nil {
		t.Fatalf("fuzz campaign failed: %v\n%s", err, out.String())
	}
	text := out.String()
	if !strings.Contains(text, "fuzz campaign: 2 scenario(s)") && !strings.Contains(text, "infeasible") {
		t.Errorf("report missing scenario count:\n%s", text)
	}
	if !strings.Contains(text, "PASS") {
		t.Errorf("healthy campaign did not report PASS:\n%s", text)
	}
}

// TestFuzzRejectsPositionalArgs pins the usage contract.
func TestFuzzRejectsPositionalArgs(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"fuzz", "stray.json"}, &out); err == nil {
		t.Fatal("positional argument accepted")
	}
}

// TestValidateDir sweeps a directory tree: valid and invalid files in
// nested directories are all picked up.
func TestValidateDir(t *testing.T) {
	dir := t.TempDir()
	sub := filepath.Join(dir, "nested")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "good.json"), []byte(tinyScenario), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(sub, "bad.json"), []byte(`{"name": "x"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("not a scenario"), 0o644); err != nil {
		t.Fatal(err)
	}

	var out strings.Builder
	err := run([]string{"validate", "-dir", dir}, &out)
	if err == nil {
		t.Fatal("directory with a bad file validated")
	}
	if !strings.Contains(err.Error(), "1 of 2 file(s)") {
		t.Errorf("summary %q should count 2 json files with 1 bad", err.Error())
	}
	if !strings.Contains(out.String(), "cli-tiny") {
		t.Errorf("good file not reported:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "bad.json") {
		t.Errorf("nested bad file not reported:\n%s", out.String())
	}
}

// TestValidateDirAllGood pins the success path and the combination of
// -dir with positional files.
func TestValidateDirAllGood(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "a.json"), []byte(tinyScenario), 0o644); err != nil {
		t.Fatal(err)
	}
	extra := writeScenario(t, tinyScenario)
	var out strings.Builder
	if err := run([]string{"validate", "-dir", dir, extra}, &out); err != nil {
		t.Fatalf("all-good validate failed: %v\n%s", err, out.String())
	}
	if got := strings.Count(out.String(), "cli-tiny"); got != 2 {
		t.Errorf("expected 2 valid reports, got %d:\n%s", got, out.String())
	}
}

// TestValidateDirEmpty pins that an empty tree is an error, not a
// silent pass.
func TestValidateDirEmpty(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"validate", "-dir", t.TempDir()}, &out); err == nil {
		t.Fatal("empty directory validated")
	}
}
